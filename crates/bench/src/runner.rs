use ubrc_sim::{simulate_workload, SimConfig, SimResult};
use ubrc_stats::geomean;
use ubrc_workloads::{suite, Scale};

/// Results of running the full benchmark suite under one configuration.
#[derive(Clone, Debug)]
pub struct SuiteResult {
    /// Per-benchmark `(name, result)` pairs in suite order.
    pub runs: Vec<(&'static str, SimResult)>,
}

impl SuiteResult {
    /// Geometric-mean IPC across the suite.
    pub fn geomean_ipc(&self) -> f64 {
        let ipcs: Vec<f64> = self.runs.iter().map(|(_, r)| r.ipc()).collect();
        geomean(&ipcs).unwrap_or(0.0)
    }

    /// Arithmetic mean of a per-benchmark metric, skipping benchmarks
    /// where the metric is undefined.
    pub fn mean_of<F>(&self, f: F) -> Option<f64>
    where
        F: Fn(&SimResult) -> Option<f64>,
    {
        let vals: Vec<f64> = self.runs.iter().filter_map(|(_, r)| f(r)).collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }
}

/// Runs the whole kernel suite under `config`, one thread per kernel.
pub fn run_suite(config: &SimConfig, scale: Scale) -> SuiteResult {
    let workloads = suite(scale);
    let mut runs: Vec<Option<(&'static str, SimResult)>> = Vec::new();
    runs.resize_with(workloads.len(), || None);
    std::thread::scope(|scope| {
        for (slot, w) in runs.iter_mut().zip(&workloads) {
            let cfg = config.clone();
            scope.spawn(move || {
                *slot = Some((w.name, simulate_workload(w, cfg)));
            });
        }
    });
    SuiteResult {
        runs: runs
            .into_iter()
            .map(|r| r.expect("thread completed"))
            .collect(),
    }
}

/// Convenience: geometric-mean IPC of the suite under `config`.
pub fn suite_geomean_ipc(config: &SimConfig, scale: Scale) -> f64 {
    run_suite(config, scale).geomean_ipc()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_runs_in_parallel_and_orders_results() {
        let r = run_suite(&SimConfig::paper_default(), Scale::Tiny);
        assert_eq!(r.runs.len(), 12);
        assert_eq!(r.runs[0].0, "qsort");
        assert!(r.geomean_ipc() > 0.1);
    }

    #[test]
    fn mean_of_skips_undefined_metrics() {
        let r = run_suite(&SimConfig::paper_default(), Scale::Tiny);
        let m = r.mean_of(|res| res.regcache.as_ref().and_then(|c| c.miss_rate()));
        assert!(m.unwrap() > 0.0);
        let none = r.mean_of(|_| None::<f64>);
        assert!(none.is_none());
    }
}
