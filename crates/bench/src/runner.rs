//! Suite runner: executes simulation cells on a process-wide bounded
//! worker pool.
//!
//! Every simulation in this crate — whether launched from one
//! [`run_suite`] call or from dozens of experiments running
//! concurrently in the harness binary — acquires a slot from a single
//! gate sized to the machine's parallelism before it burns CPU. That
//! lets the experiments driver fan out (experiment × config) cells
//! freely: coordinator threads are cheap, and the gate keeps the
//! number of *running* simulations bounded.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, OnceLock};
use ubrc_sim::{simulate_workload, SimConfig, SimResult};
use ubrc_stats::geomean;
use ubrc_workloads::{suite, Scale, Workload};

/// A simulation cell failed: which workload, and why.
#[derive(Clone, Debug)]
pub struct SuiteError {
    /// Name of the kernel whose simulation failed.
    pub workload: &'static str,
    /// The panic/abort message from the simulator.
    pub reason: String,
}

impl fmt::Display for SuiteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "workload `{}` failed: {}", self.workload, self.reason)
    }
}

impl std::error::Error for SuiteError {}

/// Counting semaphore bounding concurrently *running* simulations.
struct WorkerGate {
    free: Mutex<usize>,
    cv: Condvar,
}

struct Permit<'a>(&'a WorkerGate);

impl WorkerGate {
    fn acquire(&self) -> Permit<'_> {
        let mut free = self
            .cv
            .wait_while(self.free.lock().expect("gate poisoned"), |f| *f == 0)
            .expect("gate poisoned");
        *free -= 1;
        Permit(self)
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        *self.0.free.lock().expect("gate poisoned") += 1;
        self.0.cv.notify_one();
    }
}

/// Maximum simulations running at once (defaults to the machine's
/// available parallelism; override with `UBRC_BENCH_WORKERS`).
pub fn max_workers() -> usize {
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| {
        std::env::var("UBRC_BENCH_WORKERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(usize::from)
                    .unwrap_or(4)
            })
    })
}

fn gate() -> &'static WorkerGate {
    static GATE: OnceLock<WorkerGate> = OnceLock::new();
    GATE.get_or_init(|| WorkerGate {
        free: Mutex::new(max_workers()),
        cv: Condvar::new(),
    })
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "simulation panicked".to_string()
    }
}

/// Runs one simulation cell through the worker gate, converting a
/// simulator panic (deadlock assertion, faulting workload) into a
/// [`SuiteError`] naming the kernel.
pub fn run_one(w: &Workload, config: SimConfig) -> Result<SimResult, SuiteError> {
    let _permit = gate().acquire();
    catch_unwind(AssertUnwindSafe(|| simulate_workload(w, config))).map_err(|p| SuiteError {
        workload: w.name,
        reason: panic_message(p),
    })
}

/// Results of running the full benchmark suite under one configuration.
#[derive(Clone, Debug)]
pub struct SuiteResult {
    /// Per-benchmark `(name, result)` pairs in suite order.
    pub runs: Vec<(&'static str, SimResult)>,
}

impl SuiteResult {
    /// Geometric-mean IPC across the suite.
    pub fn geomean_ipc(&self) -> f64 {
        let ipcs: Vec<f64> = self.runs.iter().map(|(_, r)| r.ipc()).collect();
        geomean(&ipcs).unwrap_or(0.0)
    }

    /// Total instructions retired across the suite.
    pub fn total_retired(&self) -> u64 {
        self.runs.iter().map(|(_, r)| r.retired).sum()
    }

    /// Arithmetic mean of a per-benchmark metric, skipping benchmarks
    /// where the metric is undefined.
    pub fn mean_of<F>(&self, f: F) -> Option<f64>
    where
        F: Fn(&SimResult) -> Option<f64>,
    {
        let vals: Vec<f64> = self.runs.iter().filter_map(|(_, r)| f(r)).collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }
}

/// Runs the whole kernel suite under `config`, kernels in parallel on
/// the shared worker pool.
///
/// # Errors
///
/// Returns a [`SuiteError`] naming the first (in suite order) kernel
/// whose simulation panicked.
pub fn run_suite(config: &SimConfig, scale: Scale) -> Result<SuiteResult, SuiteError> {
    let workloads = suite(scale);
    let mut runs: Vec<Option<Result<SimResult, SuiteError>>> = Vec::new();
    runs.resize_with(workloads.len(), || None);
    std::thread::scope(|scope| {
        for (slot, w) in runs.iter_mut().zip(&workloads) {
            let cfg = config.clone();
            scope.spawn(move || {
                *slot = Some(run_one(w, cfg));
            });
        }
    });
    let mut out = Vec::with_capacity(workloads.len());
    for (r, w) in runs.into_iter().zip(&workloads) {
        out.push((w.name, r.expect("scope joined every worker")?));
    }
    Ok(SuiteResult { runs: out })
}

/// Convenience: geometric-mean IPC of the suite under `config`.
///
/// # Errors
///
/// Propagates the [`SuiteError`] of a failing kernel.
pub fn suite_geomean_ipc(config: &SimConfig, scale: Scale) -> Result<f64, SuiteError> {
    Ok(run_suite(config, scale)?.geomean_ipc())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_runs_in_parallel_and_orders_results() {
        let r = run_suite(&SimConfig::paper_default(), Scale::Tiny).unwrap();
        assert_eq!(r.runs.len(), 12);
        assert_eq!(r.runs[0].0, "qsort");
        assert!(r.geomean_ipc() > 0.1);
        assert!(r.total_retired() > 0);
    }

    #[test]
    fn mean_of_skips_undefined_metrics() {
        let r = run_suite(&SimConfig::paper_default(), Scale::Tiny).unwrap();
        let m = r.mean_of(|res| res.regcache.as_ref().and_then(|c| c.miss_rate()));
        assert!(m.unwrap() > 0.0);
        let none = r.mean_of(|_| None::<f64>);
        assert!(none.is_none());
    }

    #[test]
    fn failing_simulation_names_the_workload() {
        // An impossible configuration panics inside the simulator; the
        // runner must say *which* kernel died instead of unwinding.
        let mut cfg = SimConfig::paper_default();
        cfg.phys_regs = 8; // fewer physical than architectural registers
        let err = run_suite(&cfg, Scale::Tiny).unwrap_err();
        assert_eq!(err.workload, "qsort");
        assert!(!err.reason.is_empty());
    }
}
