//! Suite runner: executes simulation cells on a process-wide bounded
//! worker pool.
//!
//! Every simulation in this crate — whether launched from one
//! [`run_suite`] call or from dozens of experiments running
//! concurrently in the harness binary — acquires a slot from a single
//! gate sized to the machine's parallelism before it burns CPU. That
//! lets the experiments driver fan out (experiment × config) cells
//! freely: coordinator threads are cheap, and the gate keeps the
//! number of *running* simulations bounded.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;
use ubrc_isa::Program;
use ubrc_sim::{CheckConfig, SimConfig, SimError, SimResult, Simulator};
use ubrc_stats::geomean;
use ubrc_workloads::{suite, Scale, Workload};

/// A simulation cell failed: which workload, and how.
#[derive(Clone, Debug)]
pub struct SuiteError {
    /// Name of the kernel whose simulation failed.
    pub workload: &'static str,
    /// What went wrong.
    pub failure: SuiteFailure,
}

impl SuiteError {
    /// Human-readable description of the failure (without the kernel
    /// name).
    pub fn reason(&self) -> String {
        self.failure.to_string()
    }
}

impl fmt::Display for SuiteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "workload `{}` failed: {}", self.workload, self.failure)
    }
}

impl std::error::Error for SuiteError {}

/// How a simulation cell failed.
#[derive(Clone, Debug)]
pub enum SuiteFailure {
    /// The workload program failed to assemble.
    Asm(ubrc_isa::AsmError),
    /// The checked simulator reported a structured error (divergence,
    /// invariant violation, watchdog deadlock, emulator fault).
    Sim(Box<SimError>),
    /// The cell exceeded its wall-clock budget and was cancelled.
    Timeout {
        /// The budget that was exceeded, in seconds.
        secs: u64,
    },
    /// The simulator panicked (a simulator bug the structured paths
    /// did not cover).
    Panic(String),
}

impl SuiteFailure {
    /// Short machine-readable tag for JSON reports.
    pub fn kind(&self) -> &'static str {
        match self {
            SuiteFailure::Asm(_) => "asm",
            SuiteFailure::Sim(e) => match **e {
                SimError::Divergence(_) => "divergence",
                SimError::Invariant(_) => "invariant",
                SimError::Watchdog(_) => "watchdog",
                SimError::Emu(_) => "emu",
                SimError::Cancelled { .. } => "cancelled",
                SimError::Config(_) => "config",
            },
            SuiteFailure::Timeout { .. } => "timeout",
            SuiteFailure::Panic(_) => "panic",
        }
    }

    /// Whether retrying the cell could plausibly succeed: wall-clock
    /// timeouts (a loaded machine) and residual panics (ones a flaky
    /// environment produced rather than a deterministic simulator bug).
    /// Structured simulator errors and assembly failures are
    /// deterministic and never retried.
    pub fn is_transient(&self) -> bool {
        matches!(self, SuiteFailure::Timeout { .. } | SuiteFailure::Panic(_))
    }
}

impl fmt::Display for SuiteFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuiteFailure::Asm(e) => write!(f, "assembly failed: {e}"),
            SuiteFailure::Sim(e) => write!(f, "{e}"),
            SuiteFailure::Timeout { secs } => {
                write!(f, "timed out after {secs}s wall-clock")
            }
            SuiteFailure::Panic(m) => write!(f, "{m}"),
        }
    }
}

/// Per-run options for the suite runner, normally derived from the
/// environment (which is how the `experiments` binary's `--check` and
/// `--timeout` flags reach every cell without threading a parameter
/// through every experiment signature).
#[derive(Clone, Copy, Debug, Default)]
pub struct RunOptions {
    /// Enable full runtime checking ([`CheckConfig::full`]) on every
    /// cell, overriding the per-config setting.
    pub check: bool,
    /// Wall-clock budget per cell; a cell still running at the deadline
    /// is cancelled and reported as [`SuiteFailure::Timeout`].
    pub timeout: Option<Duration>,
    /// Extra attempts after a *transient* failure (see
    /// [`SuiteFailure::is_transient`]), with exponential backoff
    /// between attempts. Deterministic failures are never retried.
    pub retries: u32,
    /// Enable per-stage self-profiling on every cell (wall-time and
    /// call counts per pipeline stage; never changes simulated timing).
    pub profile: bool,
}

impl RunOptions {
    /// Reads `UBRC_CHECK` (any non-empty value other than `0`),
    /// `UBRC_TIMEOUT_SECS` (integer seconds), `UBRC_RETRIES`
    /// (extra attempts per cell on transient failures), and
    /// `UBRC_PROFILE` (any non-empty value other than `0`).
    pub fn from_env() -> Self {
        let check = std::env::var("UBRC_CHECK")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false);
        let timeout = std::env::var("UBRC_TIMEOUT_SECS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&s| s > 0)
            .map(Duration::from_secs);
        let retries = std::env::var("UBRC_RETRIES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .unwrap_or(0);
        let profile = std::env::var("UBRC_PROFILE")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false);
        Self {
            check,
            timeout,
            retries,
            profile,
        }
    }
}

/// Counting semaphore bounding concurrently *running* simulations.
struct WorkerGate {
    free: Mutex<usize>,
    cv: Condvar,
}

struct Permit<'a>(&'a WorkerGate);

impl WorkerGate {
    fn acquire(&self) -> Permit<'_> {
        let mut free = self
            .cv
            .wait_while(self.free.lock().expect("gate poisoned"), |f| *f == 0)
            .expect("gate poisoned");
        *free -= 1;
        Permit(self)
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        *self.0.free.lock().expect("gate poisoned") += 1;
        self.0.cv.notify_one();
    }
}

/// Maximum simulations running at once (defaults to the machine's
/// available parallelism; override with `UBRC_BENCH_WORKERS`).
pub fn max_workers() -> usize {
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| {
        std::env::var("UBRC_BENCH_WORKERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(usize::from)
                    .unwrap_or(4)
            })
    })
}

fn gate() -> &'static WorkerGate {
    static GATE: OnceLock<WorkerGate> = OnceLock::new();
    GATE.get_or_init(|| WorkerGate {
        free: Mutex::new(max_workers()),
        cv: Condvar::new(),
    })
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "simulation panicked".to_string()
    }
}

/// One attempt of a cell: assemble every member and simulate, with
/// the checking override and wall-clock deadline from `opts` applied.
fn attempt_cell(
    ws: &[&Workload],
    config: &SimConfig,
    opts: RunOptions,
) -> Result<SimResult, SuiteFailure> {
    let mut programs = Vec::with_capacity(ws.len());
    for w in ws {
        programs.push(w.assemble().map_err(SuiteFailure::Asm)?);
    }
    let mut config = config.clone();
    if opts.check {
        config.check = CheckConfig::full();
    }
    if opts.profile {
        config.profile = true;
    }
    match opts.timeout {
        Some(budget) => run_with_deadline(programs, config, budget),
        None => catch_unwind(AssertUnwindSafe(|| {
            Simulator::try_new_smt(programs, config)
                .map_err(|e| Box::new(SimError::Config(e)))?
                .run_checked()
        }))
        .map_err(|p| SuiteFailure::Panic(panic_message(p)))?
        .map_err(SuiteFailure::Sim),
    }
}

/// Runs a cell through the worker gate, retrying transient failures
/// (timeout, panic) up to `opts.retries` extra times with exponential
/// backoff. Returns the final outcome and the number of attempts made.
fn run_cell(
    label: &'static str,
    ws: &[&Workload],
    config: &SimConfig,
    opts: RunOptions,
) -> (Result<SimResult, SuiteError>, u32) {
    let _permit = gate().acquire();
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        match attempt_cell(ws, config, opts) {
            Ok(r) => return (Ok(r), attempts),
            Err(failure) => {
                if attempts <= opts.retries && failure.is_transient() {
                    // 50ms, 100ms, 200ms, … capped at 3.2s per step.
                    let backoff = 50u64 << (attempts - 1).min(6);
                    std::thread::sleep(Duration::from_millis(backoff));
                    continue;
                }
                return (
                    Err(SuiteError {
                        workload: label,
                        failure,
                    }),
                    attempts,
                );
            }
        }
    }
}

/// Runs one simulation cell through the worker gate with options from
/// the environment (see [`RunOptions::from_env`]), converting every
/// failure mode — assembly error, structured [`SimError`], wall-clock
/// timeout, residual panic — into a [`SuiteError`] naming the kernel.
pub fn run_one(w: &Workload, config: SimConfig) -> Result<SimResult, SuiteError> {
    run_one_with(w, config, RunOptions::from_env())
}

/// [`run_one`] with explicit options.
pub fn run_one_with(
    w: &Workload,
    config: SimConfig,
    opts: RunOptions,
) -> Result<SimResult, SuiteError> {
    run_one_cell(w, config, opts).outcome
}

/// [`run_one`] with explicit options, also reporting the attempt
/// count (how many times the runner had to run the cell before its
/// final outcome; 1 unless transient failures were retried).
pub fn run_one_cell(w: &Workload, config: SimConfig, opts: RunOptions) -> SuiteCell {
    let (outcome, attempts) = run_cell(w.name, &[w], &config, opts);
    SuiteCell {
        name: w.name,
        outcome,
        attempts,
    }
}

/// Runs one 2-thread SMT cell — a kernel pair co-scheduled on one core
/// — through the worker gate with options from the environment.
/// Failures name the pair as `a+b`.
pub fn run_pair(a: &Workload, b: &Workload, config: SimConfig) -> Result<SimResult, SuiteError> {
    run_pair_with(a, b, config, RunOptions::from_env())
}

/// [`run_pair`] with explicit options.
pub fn run_pair_with(
    a: &Workload,
    b: &Workload,
    config: SimConfig,
    opts: RunOptions,
) -> Result<SimResult, SuiteError> {
    run_group_with(&[a, b], config, opts)
}

/// Runs one N-thread SMT cell — a group of kernels co-scheduled on one
/// core, one hardware thread each — through the worker gate with
/// options from the environment. Failures name the whole group as
/// `a+b+…` so a timeout or misconfiguration in a multi-thread cell is
/// attributed to the co-schedule, never to a single member.
pub fn run_group(ws: &[&Workload], config: SimConfig) -> Result<SimResult, SuiteError> {
    run_group_with(ws, config, RunOptions::from_env())
}

/// [`run_group`] with explicit options.
pub fn run_group_with(
    ws: &[&Workload],
    config: SimConfig,
    opts: RunOptions,
) -> Result<SimResult, SuiteError> {
    run_group_cell(ws, config, opts).outcome
}

/// [`run_group`] with explicit options, also reporting the attempt
/// count (as in [`run_one_cell`]).
pub fn run_group_cell(ws: &[&Workload], config: SimConfig, opts: RunOptions) -> SuiteCell {
    let names: Vec<&str> = ws.iter().map(|w| w.name).collect();
    let label = group_label(&names);
    let (outcome, attempts) = run_cell(label, ws, &config, opts);
    SuiteCell {
        name: label,
        outcome,
        attempts,
    }
}

/// Interns a `a+b+…` co-schedule label (the error and report types
/// carry `&'static str` kernel names). The group set is tiny and
/// fixed, so the leak is bounded.
fn group_label(names: &[&str]) -> &'static str {
    use std::collections::HashMap;
    static LABELS: OnceLock<Mutex<HashMap<String, &'static str>>> = OnceLock::new();
    let mut map = LABELS
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .expect("label map poisoned");
    let key = names.join("+");
    if let Some(&s) = map.get(&key) {
        return s;
    }
    let leaked: &'static str = Box::leak(key.clone().into_boxed_str());
    map.insert(key, leaked);
    leaked
}

fn pair_label(a: &str, b: &str) -> &'static str {
    group_label(&[a, b])
}

/// Runs one simulation on a worker thread with a wall-clock deadline.
/// At the deadline the simulator's cancellation flag is raised (it
/// polls every 1024 cycles) and the cell is reported as a timeout; the
/// worker unwinds shortly after on its own.
fn run_with_deadline(
    programs: Vec<Program>,
    config: SimConfig,
    budget: Duration,
) -> Result<SimResult, SuiteFailure> {
    let cancel = Arc::new(AtomicBool::new(false));
    let flag = cancel.clone();
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let outcome = catch_unwind(AssertUnwindSafe(move || {
            let mut sim = Simulator::try_new_smt(programs, config)
                .map_err(|e| Box::new(SimError::Config(e)))?;
            sim.set_cancel(flag);
            sim.run_checked()
        }));
        let _ = tx.send(outcome);
    });
    match rx.recv_timeout(budget) {
        Ok(Ok(Ok(res))) => Ok(res),
        Ok(Ok(Err(e))) => Err(SuiteFailure::Sim(e)),
        Ok(Err(p)) => Err(SuiteFailure::Panic(panic_message(p))),
        Err(_) => {
            cancel.store(true, Ordering::Relaxed);
            Err(SuiteFailure::Timeout {
                secs: budget.as_secs(),
            })
        }
    }
}

/// Results of running the full benchmark suite under one configuration.
#[derive(Clone, Debug)]
pub struct SuiteResult {
    /// Per-benchmark `(name, result)` pairs in suite order.
    pub runs: Vec<(&'static str, SimResult)>,
}

impl SuiteResult {
    /// Geometric-mean IPC across the suite.
    pub fn geomean_ipc(&self) -> f64 {
        let ipcs: Vec<f64> = self.runs.iter().map(|(_, r)| r.ipc()).collect();
        geomean(&ipcs).unwrap_or(0.0)
    }

    /// Total instructions retired across the suite.
    pub fn total_retired(&self) -> u64 {
        self.runs.iter().map(|(_, r)| r.retired).sum()
    }

    /// Arithmetic mean of a per-benchmark metric, skipping benchmarks
    /// where the metric is undefined.
    pub fn mean_of<F>(&self, f: F) -> Option<f64>
    where
        F: Fn(&SimResult) -> Option<f64>,
    {
        let vals: Vec<f64> = self.runs.iter().filter_map(|(_, r)| f(r)).collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }
}

/// Runs the whole kernel suite under `config`, kernels in parallel on
/// the shared worker pool.
///
/// # Errors
///
/// Returns a [`SuiteError`] naming the first (in suite order) kernel
/// whose simulation panicked.
pub fn run_suite(config: &SimConfig, scale: Scale) -> Result<SuiteResult, SuiteError> {
    let workloads = suite(scale);
    let mut runs: Vec<Option<Result<SimResult, SuiteError>>> = Vec::new();
    runs.resize_with(workloads.len(), || None);
    std::thread::scope(|scope| {
        for (slot, w) in runs.iter_mut().zip(&workloads) {
            let cfg = config.clone();
            scope.spawn(move || {
                *slot = Some(run_one(w, cfg));
            });
        }
    });
    let mut out = Vec::with_capacity(workloads.len());
    for (r, w) in runs.into_iter().zip(&workloads) {
        out.push((w.name, r.expect("scope joined every worker")?));
    }
    Ok(SuiteResult { runs: out })
}

/// Runs every [`ubrc_workloads::kernel_pairs`] pairing as a 2-thread
/// SMT cell under `config`, pairs in parallel on the shared worker
/// pool. Each run's name is the `a+b` pair label and its IPC is the
/// *aggregate* (both threads' retirement over shared cycles).
///
/// # Errors
///
/// Returns a [`SuiteError`] naming the first (in pair order) pair
/// whose simulation failed.
pub fn run_pair_suite(config: &SimConfig, scale: Scale) -> Result<SuiteResult, SuiteError> {
    let pairs = ubrc_workloads::kernel_pairs(scale);
    let mut runs: Vec<Option<Result<SimResult, SuiteError>>> = Vec::new();
    runs.resize_with(pairs.len(), || None);
    std::thread::scope(|scope| {
        for (slot, (a, b)) in runs.iter_mut().zip(&pairs) {
            let cfg = config.clone();
            scope.spawn(move || {
                *slot = Some(run_pair(a, b, cfg));
            });
        }
    });
    let mut out = Vec::with_capacity(pairs.len());
    for (r, (a, b)) in runs.into_iter().zip(&pairs) {
        let name = pair_label(a.name, b.name);
        out.push((name, r.expect("scope joined every worker")?));
    }
    Ok(SuiteResult { runs: out })
}

/// Convenience: geometric-mean IPC of the suite under `config`.
///
/// # Errors
///
/// Propagates the [`SuiteError`] of a failing kernel.
pub fn suite_geomean_ipc(config: &SimConfig, scale: Scale) -> Result<f64, SuiteError> {
    Ok(run_suite(config, scale)?.geomean_ipc())
}

/// One cell of a [`SuiteReport`]: the kernel (or co-schedule) label,
/// its final outcome, and how many attempts the runner made before
/// settling on it (1 unless transient failures were retried; see
/// [`RunOptions::retries`]).
#[derive(Debug)]
pub struct SuiteCell {
    /// Kernel or `a+b+…` co-schedule label.
    pub name: &'static str,
    /// The final outcome after any retries.
    pub outcome: Result<SimResult, SuiteError>,
    /// Number of attempts made (at least 1).
    pub attempts: u32,
}

/// Results of a whole-suite run that keeps going past failures: one
/// entry per kernel, in suite order, each either a result or the
/// kernel's own [`SuiteError`].
#[derive(Debug)]
pub struct SuiteReport {
    /// Per-kernel cells in suite order.
    pub runs: Vec<SuiteCell>,
}

impl SuiteReport {
    /// The successful cells, as a [`SuiteResult`] (for the usual
    /// aggregate statistics over whatever completed).
    pub fn successes(&self) -> SuiteResult {
        SuiteResult {
            runs: self
                .runs
                .iter()
                .filter_map(|c| c.outcome.as_ref().ok().map(|res| (c.name, res.clone())))
                .collect(),
        }
    }

    /// Number of failed cells.
    pub fn failed(&self) -> usize {
        self.runs.iter().filter(|c| c.outcome.is_err()).count()
    }
}

/// Runs every kernel pair as a 2-thread SMT cell like
/// [`run_pair_suite`], but degrades gracefully: a failing pair is
/// recorded in place and the rest still runs.
pub fn run_pair_suite_robust(config: &SimConfig, scale: Scale) -> SuiteReport {
    let pairs = ubrc_workloads::kernel_pairs(scale);
    let mut runs: Vec<Option<SuiteCell>> = Vec::new();
    runs.resize_with(pairs.len(), || None);
    std::thread::scope(|scope| {
        for (slot, (a, b)) in runs.iter_mut().zip(&pairs) {
            let cfg = config.clone();
            scope.spawn(move || {
                *slot = Some(run_group_cell(&[a, b], cfg, RunOptions::from_env()));
            });
        }
    });
    SuiteReport {
        runs: runs
            .into_iter()
            .map(|r| r.expect("scope joined every worker"))
            .collect(),
    }
}

/// Runs every [`ubrc_workloads::kernel_quads`] grouping as a 4-thread
/// SMT cell under `config`, quads in parallel on the shared worker
/// pool. Each run's name is the `a+b+c+d` group label and its IPC is
/// the *aggregate* (four-thread) IPC.
///
/// # Errors
///
/// Returns a [`SuiteError`] naming the first (in quad order) quad whose
/// simulation failed.
pub fn run_quad_suite(config: &SimConfig, scale: Scale) -> Result<SuiteResult, SuiteError> {
    let report = run_quad_suite_robust(config, scale);
    let mut out = Vec::with_capacity(report.runs.len());
    for cell in report.runs {
        out.push((cell.name, cell.outcome?));
    }
    Ok(SuiteResult { runs: out })
}

/// Runs every kernel quad as a 4-thread SMT cell like
/// [`run_quad_suite`], but degrades gracefully: a failing quad is
/// recorded in place and the rest still runs.
pub fn run_quad_suite_robust(config: &SimConfig, scale: Scale) -> SuiteReport {
    let quads = ubrc_workloads::kernel_quads(scale);
    let mut runs: Vec<Option<SuiteCell>> = Vec::new();
    runs.resize_with(quads.len(), || None);
    std::thread::scope(|scope| {
        for (slot, quad) in runs.iter_mut().zip(&quads) {
            let cfg = config.clone();
            scope.spawn(move || {
                let refs: Vec<&Workload> = quad.iter().collect();
                *slot = Some(run_group_cell(&refs, cfg, RunOptions::from_env()));
            });
        }
    });
    SuiteReport {
        runs: runs
            .into_iter()
            .map(|r| r.expect("scope joined every worker"))
            .collect(),
    }
}

/// Runs the whole kernel suite under `config` like [`run_suite`], but
/// degrades gracefully: a failing kernel is recorded in place and the
/// rest of the suite still runs, so callers can emit partial results.
pub fn run_suite_robust(config: &SimConfig, scale: Scale) -> SuiteReport {
    let workloads = suite(scale);
    let mut runs: Vec<Option<SuiteCell>> = Vec::new();
    runs.resize_with(workloads.len(), || None);
    std::thread::scope(|scope| {
        for (slot, w) in runs.iter_mut().zip(&workloads) {
            let cfg = config.clone();
            scope.spawn(move || {
                *slot = Some(run_one_cell(w, cfg, RunOptions::from_env()));
            });
        }
    });
    SuiteReport {
        runs: runs
            .into_iter()
            .map(|r| r.expect("scope joined every worker"))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_runs_in_parallel_and_orders_results() {
        let r = run_suite(&SimConfig::paper_default(), Scale::Tiny).unwrap();
        assert_eq!(r.runs.len(), 12);
        assert_eq!(r.runs[0].0, "qsort");
        assert!(r.geomean_ipc() > 0.1);
        assert!(r.total_retired() > 0);
    }

    #[test]
    fn mean_of_skips_undefined_metrics() {
        let r = run_suite(&SimConfig::paper_default(), Scale::Tiny).unwrap();
        let m = r.mean_of(|res| res.regcache.as_ref().and_then(|c| c.miss_rate()));
        assert!(m.unwrap() > 0.0);
        let none = r.mean_of(|_| None::<f64>);
        assert!(none.is_none());
    }

    #[test]
    fn failing_simulation_names_the_workload() {
        // An impossible configuration is rejected as a structured
        // ConfigError; the runner must say *which* kernel died instead
        // of unwinding.
        let mut cfg = SimConfig::paper_default();
        cfg.phys_regs = 8; // fewer physical than architectural registers
        let err = run_suite(&cfg, Scale::Tiny).unwrap_err();
        assert_eq!(err.workload, "qsort");
        assert!(!err.reason().is_empty());
        assert_eq!(err.failure.kind(), "config");
        assert!(matches!(&err.failure, SuiteFailure::Sim(e) if matches!(**e, SimError::Config(_))));
    }

    #[test]
    fn robust_suite_reports_every_cell() {
        let mut cfg = SimConfig::paper_default();
        cfg.phys_regs = 8;
        let report = run_suite_robust(&cfg, Scale::Tiny);
        assert_eq!(report.runs.len(), 12);
        assert_eq!(report.failed(), 12);
        assert!(report.successes().runs.is_empty());
        for cell in &report.runs {
            let err = cell.outcome.as_ref().unwrap_err();
            assert_eq!(err.workload, cell.name);
            // Config rejection is deterministic: no retry was made.
            assert_eq!(cell.attempts, 1);
        }
    }

    #[test]
    fn quad_suite_runs_in_parallel_and_orders_results() {
        let r = run_quad_suite(&SimConfig::paper_default(), Scale::Tiny).unwrap();
        assert_eq!(r.runs.len(), 3);
        assert_eq!(r.runs[0].0, "qsort+bfs+listchase+strsearch");
        assert_eq!(r.runs[1].0, "hash+rle+matmul+bitops");
        assert_eq!(r.runs[2].0, "crc+fpmix+fib+dispatch");
        assert!(r.geomean_ipc() > 0.1);
        assert!(r.total_retired() > 0);
    }

    #[test]
    fn pair_timeout_is_attributed_to_the_pair_label() {
        // A timeout in a 2-thread cell must name the co-schedule, not
        // one member or a stale label.
        let pairs = ubrc_workloads::kernel_pairs(Scale::Default);
        let (a, b) = &pairs[0];
        let opts = RunOptions {
            timeout: Some(Duration::from_millis(0)),
            ..RunOptions::default()
        };
        let err = run_pair_with(a, b, SimConfig::paper_default(), opts).unwrap_err();
        assert_eq!(err.workload, "qsort+bfs");
        assert_eq!(err.failure.kind(), "timeout");
        assert!(err.to_string().contains("qsort+bfs"));
    }

    #[test]
    fn quad_failures_are_attributed_to_the_quad_label() {
        // A rejected configuration in a 4-thread cell must name the
        // whole quad on both the direct and the deadline paths.
        let quads = ubrc_workloads::kernel_quads(Scale::Tiny);
        let refs: Vec<&ubrc_workloads::Workload> = quads[0].iter().collect();
        let mut cfg = SimConfig::paper_default();
        cfg.phys_regs = 514; // does not divide across 4 threads
        let err = run_group_with(&refs, cfg.clone(), RunOptions::default()).unwrap_err();
        assert_eq!(err.workload, "qsort+bfs+listchase+strsearch");
        assert_eq!(err.failure.kind(), "config");
        let opts = RunOptions {
            timeout: Some(Duration::from_secs(120)),
            ..RunOptions::default()
        };
        let err = run_group_with(&refs, cfg, opts).unwrap_err();
        assert_eq!(err.workload, "qsort+bfs+listchase+strsearch");
        assert_eq!(err.failure.kind(), "config");
    }

    #[test]
    fn timeout_cancels_a_running_cell() {
        // Default scale: the cell must still be running when the main
        // thread reaches its 0ms deadline, even on a loaded machine.
        let w = ubrc_workloads::workload_by_name("qsort", Scale::Default).unwrap();
        let opts = RunOptions {
            timeout: Some(Duration::from_millis(0)),
            ..RunOptions::default()
        };
        let err = run_one_with(&w, SimConfig::paper_default(), opts).unwrap_err();
        assert!(matches!(err.failure, SuiteFailure::Timeout { secs: 0 }));
        assert_eq!(err.failure.kind(), "timeout");
        assert!(err.failure.is_transient());
        assert!(err.to_string().contains("timed out"));
    }

    #[test]
    fn transient_failures_are_retried_and_attempts_counted() {
        // A 0ms deadline times out every attempt; with 2 retries the
        // runner must make exactly 3 attempts and still report the
        // timeout as the final outcome.
        let w = ubrc_workloads::workload_by_name("qsort", Scale::Default).unwrap();
        let opts = RunOptions {
            timeout: Some(Duration::from_millis(0)),
            retries: 2,
            ..RunOptions::default()
        };
        let cell = run_one_cell(&w, SimConfig::paper_default(), opts);
        assert_eq!(cell.attempts, 3);
        let err = cell.outcome.unwrap_err();
        assert_eq!(err.failure.kind(), "timeout");
    }

    #[test]
    fn deterministic_failures_are_never_retried() {
        // A rejected configuration fails identically every time; the
        // retry budget must not be spent on it.
        let mut cfg = SimConfig::paper_default();
        cfg.phys_regs = 8;
        let w = ubrc_workloads::workload_by_name("qsort", Scale::Tiny).unwrap();
        let opts = RunOptions {
            retries: 3,
            ..RunOptions::default()
        };
        let cell = run_one_cell(&w, cfg, opts);
        assert_eq!(cell.attempts, 1);
        let err = cell.outcome.unwrap_err();
        assert_eq!(err.failure.kind(), "config");
        assert!(!err.failure.is_transient());
    }

    #[test]
    fn successful_cells_report_one_attempt() {
        let w = ubrc_workloads::workload_by_name("crc", Scale::Tiny).unwrap();
        let opts = RunOptions {
            retries: 5,
            ..RunOptions::default()
        };
        let cell = run_one_cell(&w, SimConfig::paper_default(), opts);
        assert_eq!(cell.attempts, 1);
        assert!(cell.outcome.is_ok());
    }

    #[test]
    fn profiled_run_matches_unprofiled() {
        // `--profile` must be observation-only: identical simulated
        // outcome, with the wall-time attribution riding alongside.
        let w = ubrc_workloads::workload_by_name("crc", Scale::Tiny).unwrap();
        let plain = run_one_with(&w, SimConfig::paper_default(), RunOptions::default()).unwrap();
        let opts = RunOptions {
            profile: true,
            ..RunOptions::default()
        };
        let profiled = run_one_with(&w, SimConfig::paper_default(), opts).unwrap();
        assert_eq!(plain.cycles, profiled.cycles);
        assert_eq!(plain.retired, profiled.retired);
        assert!(plain.profile.is_none());
        let p = profiled.profile.expect("profile collected");
        assert!(p.total_nanos() > 0);
        // Every stage runs once per cycle, so the call counts agree
        // with each other and with the simulated cycle count.
        assert!(p.stages.iter().all(|s| s.calls == plain.cycles));
    }

    #[test]
    fn checked_run_matches_unchecked() {
        // `--check` must be observation-only: identical SimResult.
        let w = ubrc_workloads::workload_by_name("crc", Scale::Tiny).unwrap();
        let plain = run_one_with(&w, SimConfig::paper_default(), RunOptions::default()).unwrap();
        let opts = RunOptions {
            check: true,
            timeout: Some(Duration::from_secs(120)),
            ..RunOptions::default()
        };
        let checked = run_one_with(&w, SimConfig::paper_default(), opts).unwrap();
        assert_eq!(plain.cycles, checked.cycles);
        assert_eq!(plain.retired, checked.retired);
        assert_eq!(plain.replayed, checked.replayed);
        assert_eq!(plain.miss_events, checked.miss_events);
        assert_eq!(plain.operands_bypassed, checked.operands_bypassed);
    }
}
