//! Experiment harness for the UBRC reproduction.
//!
//! One entry point per table/figure of the paper's evaluation section
//! (see DESIGN.md for the full index). Each experiment runs the
//! benchmark suite under the relevant configurations and returns a
//! [`ubrc_stats::Table`] holding the same rows/series the paper
//! reports. The `experiments` binary prints them:
//!
//! ```text
//! cargo run --release -p ubrc-bench --bin experiments -- fig6
//! cargo run --release -p ubrc-bench --bin experiments -- all --scale small
//! ```

#![warn(missing_docs)]

pub mod experiments;
mod runner;
mod trajectory;

pub use runner::{
    max_workers, run_group, run_group_cell, run_group_with, run_one, run_one_cell, run_one_with,
    run_pair, run_pair_suite, run_pair_suite_robust, run_pair_with, run_quad_suite,
    run_quad_suite_robust, run_suite, run_suite_robust, suite_geomean_ipc, RunOptions, SuiteCell,
    SuiteError, SuiteFailure, SuiteReport, SuiteResult,
};
pub use trajectory::{
    pipeline_trajectory, smt4_trajectory_configs, smt_trajectory_configs, soft_trajectory_configs,
    trajectory_configs, TrajectoryOutcome, SCHEMA as TRAJECTORY_SCHEMA,
};
