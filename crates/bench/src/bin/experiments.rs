//! Experiment harness CLI: regenerates every table and figure of the
//! paper's evaluation.
//!
//! ```text
//! experiments <id|all> [--scale tiny|small|default]
//! ```

use std::time::Instant;
use ubrc_bench::experiments::registry;
use ubrc_workloads::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Option<String> = None;
    let mut scale = Scale::Default;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("tiny") => Scale::Tiny,
                    Some("small") => Scale::Small,
                    Some("default") | None => Scale::Default,
                    Some(other) => {
                        eprintln!("unknown scale `{other}`");
                        std::process::exit(2);
                    }
                };
            }
            other if which.is_none() => which = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let reg = registry();
    let Some(which) = which else {
        eprintln!(
            "usage: experiments <id|all> [--scale tiny|small|default]\n\navailable experiments:"
        );
        for (id, desc, _) in &reg {
            eprintln!("  {id:<16} {desc}");
        }
        std::process::exit(2);
    };

    let selected: Vec<_> = if which == "all" {
        reg
    } else {
        let found: Vec<_> = reg.into_iter().filter(|(id, _, _)| *id == which).collect();
        if found.is_empty() {
            eprintln!("unknown experiment `{which}` (try `all`)");
            std::process::exit(2);
        }
        found
    };

    for (id, desc, f) in selected {
        let t0 = Instant::now();
        let table = f(scale);
        println!(
            "## {id} — {desc}  [scale={scale:?}, {:.1}s]",
            t0.elapsed().as_secs_f64()
        );
        println!("{table}");
    }
}
