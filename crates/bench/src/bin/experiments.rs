//! Experiment harness CLI: regenerates every table and figure of the
//! paper's evaluation, and emits the machine-readable benchmark
//! trajectory.
//!
//! ```text
//! experiments <id|all> [--scale tiny|small|default] [--json [PATH]]
//!             [--check] [--timeout SECS] [--retries N] [--profile]
//! experiments --json            # trajectory only -> BENCH_pipeline.json
//! experiments --list            # print available experiment ids
//! ```
//!
//! `--check` turns on full runtime checking (lockstep co-simulation
//! oracle + per-cycle invariant checker) for every simulation;
//! `--timeout SECS` gives each simulation cell a wall-clock budget,
//! after which it is cancelled and reported as a typed timeout;
//! `--retries N` re-runs a cell up to N extra times (with exponential
//! backoff) when it fails transiently — timeout or panic — before the
//! failure is recorded; `--profile` turns on the per-stage
//! self-profiling layer (wall-time and call counts per pipeline stage,
//! reported in the trajectory JSON; zero-cost when off and never a
//! change to simulated timing). All four reach the runner through the
//! `UBRC_CHECK` / `UBRC_TIMEOUT_SECS` / `UBRC_RETRIES` /
//! `UBRC_PROFILE` environment variables, so they compose with every
//! experiment.
//!
//! Selected experiments run concurrently: each gets a coordinator
//! thread, and every individual simulation anywhere in the process
//! goes through one bounded worker pool (see `ubrc_bench::run_one`),
//! so total CPU use stays at the machine's parallelism no matter how
//! many experiments are in flight. Reports still print in registry
//! order.

use std::time::Instant;
use ubrc_bench::experiments::registry;
use ubrc_bench::pipeline_trajectory;
use ubrc_stats::Table;
use ubrc_workloads::Scale;

struct Cli {
    which: Option<String>,
    scale: Scale,
    json: Option<String>,
    check: bool,
    timeout: Option<u64>,
    retries: Option<u32>,
    profile: bool,
    list: bool,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        which: None,
        scale: Scale::Default,
        json: None,
        check: false,
        timeout: None,
        retries: None,
        profile: false,
        list: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                cli.scale = match args.get(i).map(String::as_str) {
                    Some("tiny") => Scale::Tiny,
                    Some("small") => Scale::Small,
                    Some("default") | None => Scale::Default,
                    Some(other) => return Err(format!("unknown scale `{other}`")),
                };
            }
            "--json" => {
                // Optional path operand (recognized by its .json
                // suffix, so a following experiment id is not eaten);
                // defaults to BENCH_pipeline.json in the current
                // directory.
                let path = match args.get(i + 1) {
                    Some(p) if p.ends_with(".json") => {
                        i += 1;
                        p.clone()
                    }
                    _ => "BENCH_pipeline.json".to_string(),
                };
                cli.json = Some(path);
            }
            "--check" => cli.check = true,
            "--profile" => cli.profile = true,
            "--list" => cli.list = true,
            "--timeout" => {
                i += 1;
                cli.timeout = match args.get(i).and_then(|v| v.parse::<u64>().ok()) {
                    Some(s) if s > 0 => Some(s),
                    _ => return Err("--timeout needs a positive integer of seconds".into()),
                };
            }
            "--retries" => {
                i += 1;
                cli.retries = match args.get(i).and_then(|v| v.parse::<u32>().ok()) {
                    Some(n) => Some(n),
                    None => return Err("--retries needs a non-negative integer".into()),
                };
            }
            other if cli.which.is_none() && !other.starts_with("--") => {
                cli.which = Some(other.to_string())
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
        i += 1;
    }
    Ok(cli)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = parse_args(&args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });

    // The runner picks these up per cell (`RunOptions::from_env`).
    if cli.check {
        std::env::set_var("UBRC_CHECK", "1");
    }
    if let Some(secs) = cli.timeout {
        std::env::set_var("UBRC_TIMEOUT_SECS", secs.to_string());
    }
    if let Some(n) = cli.retries {
        std::env::set_var("UBRC_RETRIES", n.to_string());
    }
    if cli.profile {
        std::env::set_var("UBRC_PROFILE", "1");
    }

    let reg = registry();
    if cli.list {
        // Machine-friendly: one id per line on stdout, exit 0 (CI uses
        // this to enumerate experiments without parsing usage text).
        for (id, _, _) in &reg {
            println!("{id}");
        }
        return;
    }
    if cli.which.is_none() && cli.json.is_none() {
        eprintln!(
            "usage: experiments <id|all> [--scale tiny|small|default] [--json [PATH]]\n\
             \x20                 [--check] [--timeout SECS] [--retries N] [--profile]\n\
             \n\
             --list         print the available experiment ids and exit\n\
             --json [PATH]  also run the benchmark trajectory and write it as JSON\n\
             --check        enable the co-simulation oracle and invariant checker\n\
             --timeout SECS wall-clock budget per simulation cell\n\
             --retries N    extra attempts per cell on transient failures\n\
             --profile      attribute wall-time to pipeline stages in the JSON\n\
             \n\
             available experiments:"
        );
        for (id, desc, _) in &reg {
            eprintln!("  {id:<16} {desc}");
        }
        std::process::exit(2);
    }

    let selected: Vec<_> = match cli.which.as_deref() {
        None => Vec::new(),
        Some("all") => reg,
        Some(which) => {
            let found: Vec<_> = reg.into_iter().filter(|(id, _, _)| *id == which).collect();
            if found.is_empty() {
                eprintln!("unknown experiment `{which}` (try `all`)");
                std::process::exit(2);
            }
            found
        }
    };

    let scale = cli.scale;
    let mut failed = false;

    // One coordinator thread per experiment; the worker gate inside
    // run_one() bounds actual concurrent simulations.
    let mut results: Vec<Option<(Result<Table, _>, f64)>> = Vec::new();
    results.resize_with(selected.len(), || None);
    std::thread::scope(|scope| {
        for (slot, (_, _, f)) in results.iter_mut().zip(&selected) {
            scope.spawn(move || {
                let t0 = Instant::now();
                let table = f(scale);
                *slot = Some((table, t0.elapsed().as_secs_f64()));
            });
        }
    });

    for ((id, desc, _), result) in selected.iter().zip(results) {
        let (table, secs) = result.expect("scope joined every coordinator");
        match table {
            Ok(table) => {
                println!("## {id} — {desc}  [scale={scale:?}, {secs:.1}s]");
                println!("{table}");
            }
            Err(e) => {
                eprintln!("## {id} — FAILED: {e}");
                failed = true;
            }
        }
    }

    if let Some(path) = cli.json {
        // Partial results are still written: a failing cell appears as
        // an error object in the document, and the run exits non-zero.
        let out = pipeline_trajectory(scale);
        let body = format!("{}\n", out.doc);
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("cannot write `{path}`: {e}");
            failed = true;
        } else if out.failed > 0 {
            eprintln!("wrote {path} ({} cells FAILED)", out.failed);
            failed = true;
        } else {
            eprintln!("wrote {path}");
        }
    }

    if failed {
        std::process::exit(1);
    }
}
