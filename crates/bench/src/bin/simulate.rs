//! Single-run simulator CLI: run one bundled kernel (or an assembly
//! file) under a chosen register storage organization and print a full
//! statistics report.
//!
//! ```text
//! simulate <kernel-name|path.s> [--storage use-based|lru|non-bypass|mono1|mono2|mono3|two-level]
//!          [--entries N] [--ways N] [--backing N] [--scale tiny|small|default]
//!          [--list] [--trace N]
//! ```
//!
//! `--list` prints the disassembly before simulating; `--trace N`
//! renders a pipeline diagram of the first N instructions.

use ubrc_core::{IndexPolicy, RegCacheConfig, TwoLevelConfig};
use ubrc_isa::assemble;
use ubrc_sim::{simulate, RegStorage, SimConfig, SimResult};
use ubrc_stats::Table;
use ubrc_workloads::{workload_by_name, Scale};

struct Options {
    target: String,
    storage: String,
    entries: usize,
    ways: usize,
    backing: u32,
    scale: Scale,
    list: bool,
    trace: usize,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        target: String::new(),
        storage: "use-based".into(),
        entries: 64,
        ways: 2,
        backing: 2,
        scale: Scale::Default,
        list: false,
        trace: 0,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or(format!("missing value after {arg}"))
        };
        match arg.as_str() {
            "--storage" => opts.storage = value(&mut i)?,
            "--entries" => {
                opts.entries = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --entries: {e}"))?
            }
            "--ways" => {
                opts.ways = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --ways: {e}"))?
            }
            "--backing" => {
                opts.backing = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --backing: {e}"))?
            }
            "--list" => opts.list = true,
            "--trace" => {
                opts.trace = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --trace: {e}"))?
            }
            "--scale" => {
                opts.scale = match value(&mut i)?.as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "default" => Scale::Default,
                    other => return Err(format!("unknown scale `{other}`")),
                }
            }
            other if opts.target.is_empty() && !other.starts_with('-') => {
                opts.target = other.to_string()
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
        i += 1;
    }
    if opts.target.is_empty() {
        return Err("no kernel or file given".into());
    }
    Ok(opts)
}

fn storage_of(opts: &Options) -> Result<RegStorage, String> {
    let cached = |cache| RegStorage::Cached {
        cache,
        index: IndexPolicy::FilteredRoundRobin,
        backing_read: opts.backing,
        backing_write: opts.backing,
    };
    Ok(match opts.storage.as_str() {
        "use-based" => cached(RegCacheConfig::use_based(opts.entries, opts.ways)),
        "lru" => RegStorage::Cached {
            cache: RegCacheConfig::lru(opts.entries, opts.ways),
            index: IndexPolicy::RoundRobin,
            backing_read: opts.backing,
            backing_write: opts.backing,
        },
        "non-bypass" => RegStorage::Cached {
            cache: RegCacheConfig::non_bypass(opts.entries, opts.ways),
            index: IndexPolicy::RoundRobin,
            backing_read: opts.backing,
            backing_write: opts.backing,
        },
        "mono1" => RegStorage::Monolithic {
            read_latency: 1,
            write_latency: 1,
        },
        "mono2" => RegStorage::Monolithic {
            read_latency: 2,
            write_latency: 2,
        },
        "mono3" => RegStorage::Monolithic {
            read_latency: 3,
            write_latency: 3,
        },
        "two-level" => RegStorage::TwoLevel(TwoLevelConfig::optimistic(opts.entries + 32)),
        other => return Err(format!("unknown storage `{other}`")),
    })
}

fn report(r: &SimResult) {
    let mut t = Table::new(["metric", "value"]);
    t.row(["cycles".to_string(), r.cycles.to_string()]);
    t.row(["instructions retired".to_string(), r.retired.to_string()]);
    t.row(["IPC".to_string(), format!("{:.4}", r.ipc())]);
    t.row([
        "branch mispredict rate".to_string(),
        r.branch_mispredict_rate()
            .map(|v| format!("{:.2}%", v * 100.0))
            .unwrap_or_else(|| "-".into()),
    ]);
    t.row([
        "operands from bypass".to_string(),
        r.bypass_fraction()
            .map(|v| format!("{:.1}%", v * 100.0))
            .unwrap_or_else(|| "-".into()),
    ]);
    if let Some(c) = &r.regcache {
        t.row([
            "regcache miss rate (per operand)".to_string(),
            r.miss_rate_per_operand()
                .map(|v| format!("{:.2}%", v * 100.0))
                .unwrap_or_else(|| "-".into()),
        ]);
        t.row([
            "regcache miss rate (per read)".to_string(),
            c.miss_rate()
                .map(|v| format!("{:.2}%", v * 100.0))
                .unwrap_or_else(|| "-".into()),
        ]);
        t.row([
            "writes filtered".to_string(),
            c.frac_writes_filtered()
                .map(|v| format!("{:.1}%", v * 100.0))
                .unwrap_or_else(|| "-".into()),
        ]);
        t.row([
            "avg occupancy".to_string(),
            c.occupancy
                .average(r.cycles)
                .map(|v| format!("{v:.1} entries"))
                .unwrap_or_else(|| "-".into()),
        ]);
        t.row(["replayed instructions".to_string(), r.replayed.to_string()]);
    }
    if let Some(b) = &r.backing {
        t.row(["backing file reads".to_string(), b.reads.to_string()]);
        t.row(["backing file writes".to_string(), b.writes.to_string()]);
    }
    if let Some(tl) = &r.twolevel {
        t.row(["L1→L2 transfers".to_string(), tl.transfers.to_string()]);
        t.row([
            "rename alloc stalls".to_string(),
            tl.alloc_failures.to_string(),
        ]);
        t.row([
            "recovered registers".to_string(),
            tl.recovered_regs.to_string(),
        ]);
    }
    t.row([
        "degree-of-use accuracy".to_string(),
        r.douse
            .accuracy()
            .map(|v| format!("{:.1}%", v * 100.0))
            .unwrap_or_else(|| "-".into()),
    ]);
    println!("{t}");
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: simulate <kernel|file.s> [--storage use-based|lru|non-bypass|mono1|mono2|mono3|two-level] [--entries N] [--ways N] [--backing N] [--scale S]"
            );
            std::process::exit(2);
        }
    };
    let program = if opts.target.ends_with(".s") || opts.target.contains('/') {
        let src = std::fs::read_to_string(&opts.target).unwrap_or_else(|e| {
            eprintln!("cannot read `{}`: {e}", opts.target);
            std::process::exit(2);
        });
        assemble(&src).unwrap_or_else(|e| {
            eprintln!("assembly failed: {e}");
            std::process::exit(2);
        })
    } else {
        match workload_by_name(&opts.target, opts.scale) {
            Some(w) => w.assemble().expect("bundled kernels assemble"),
            None => {
                eprintln!("unknown kernel `{}`", opts.target);
                std::process::exit(2);
            }
        }
    };
    let storage = match storage_of(&opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if opts.list {
        print!("{}", ubrc_isa::listing(&program));
        println!();
    }
    let mut config = SimConfig::table1(storage);
    config.trace_instructions = opts.trace;
    let result = simulate(program, config);
    if let Some(timeline) = &result.timeline {
        print!("{}", timeline.render(90));
        println!();
    }
    report(&result);
}
