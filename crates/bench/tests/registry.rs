//! Smoke tests for the experiment registry: every experiment id is
//! unique and documented, and each of the quick experiments runs end to
//! end at `Scale::Tiny` and produces a populated table. The heavyweight
//! sweeps (fig6/fig11/fig12) are exercised by the `experiments` binary
//! and the Criterion smoke benches instead.

use ubrc_bench::experiments::registry;
use ubrc_workloads::Scale;

#[test]
fn registry_ids_are_unique_and_described() {
    let reg = registry();
    assert!(reg.len() >= 20, "expected the full experiment set");
    let mut ids: Vec<&str> = reg.iter().map(|(id, _, _)| *id).collect();
    ids.sort_unstable();
    let before = ids.len();
    ids.dedup();
    assert_eq!(ids.len(), before, "duplicate experiment id");
    for (id, desc, _) in &reg {
        assert!(!desc.is_empty(), "experiment `{id}` has no description");
    }
}

#[test]
fn registry_covers_every_paper_table_and_figure() {
    let reg = registry();
    let ids: Vec<&str> = reg.iter().map(|(id, _, _)| *id).collect();
    for required in [
        "table1", "fig1", "fig2", "fig6", "fig7", "fig8", "fig9", "fig10", "table2", "fig11",
        "fig12",
    ] {
        assert!(ids.contains(&required), "missing experiment `{required}`");
    }
}

#[test]
fn quick_experiments_run_at_tiny_scale() {
    let heavy = [
        "fig6",
        "fig11",
        "fig12",
        "maxuse",
        "defaults",
        "filtered-params",
    ];
    for (id, _, f) in registry() {
        if heavy.contains(&id) {
            continue;
        }
        let table = f(Scale::Tiny).unwrap_or_else(|e| panic!("experiment `{id}` failed: {e}"));
        assert!(!table.is_empty(), "experiment `{id}` produced no rows");
        let text = table.to_string();
        assert!(
            text.lines().count() >= 3,
            "experiment `{id}` table too small"
        );
    }
}
