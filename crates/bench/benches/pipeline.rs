//! End-to-end simulator throughput: cycles of the Table 1 machine
//! simulated per wall-clock second, under each register-storage
//! organization.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ubrc_core::TwoLevelConfig;
use ubrc_sim::{simulate_workload, RegStorage, SimConfig};
use ubrc_workloads::{workload_by_name, Scale};

fn bench_storage_organizations(c: &mut Criterion) {
    let w = workload_by_name("crc", Scale::Tiny).expect("kernel exists");
    let configs = [
        ("sim_use_based_cache", SimConfig::paper_default()),
        (
            "sim_monolithic_rf3",
            SimConfig::table1(RegStorage::Monolithic {
                read_latency: 3,
                write_latency: 3,
            }),
        ),
        (
            "sim_two_level",
            SimConfig::table1(RegStorage::TwoLevel(TwoLevelConfig::optimistic(96))),
        ),
    ];
    for (name, cfg) in configs {
        c.bench_function(name, |b| {
            b.iter(|| black_box(simulate_workload(&w, cfg.clone()).cycles));
        });
    }
}

fn bench_kernels(c: &mut Criterion) {
    for name in ["qsort", "listchase", "fib"] {
        let w = workload_by_name(name, Scale::Tiny).expect("kernel exists");
        c.bench_function(&format!("sim_kernel_{name}"), |b| {
            b.iter(|| black_box(simulate_workload(&w, SimConfig::paper_default()).cycles));
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_storage_organizations, bench_kernels
}
criterion_main!(benches);
