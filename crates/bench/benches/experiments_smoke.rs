//! Smoke benchmarks of the experiment harness itself: each headline
//! experiment runs end to end at `Scale::Tiny`, so `cargo bench` both
//! validates and times the full reproduction path for every figure.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ubrc_bench::experiments;
use ubrc_workloads::Scale;

fn bench_experiments(c: &mut Criterion) {
    let targets: [(&str, experiments::ExperimentFn); 5] = [
        ("exp_fig7_indexing", experiments::fig7),
        ("exp_fig8_breakdown", experiments::fig8),
        ("exp_fig9_bandwidth", experiments::fig9),
        ("exp_table2_metrics", experiments::table2),
        ("exp_douse_accuracy", experiments::douse_accuracy),
    ];
    for (name, f) in targets {
        c.bench_function(name, |b| {
            b.iter(|| black_box(f(Scale::Tiny).expect("experiment runs").len()));
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_experiments
}
criterion_main!(benches);
