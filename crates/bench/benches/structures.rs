//! Micro-benchmarks of the core hardware structures: the register
//! cache's write/read/replacement path, the decoupled index assigners,
//! and the front-end predictors.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ubrc_core::{IndexAssigner, IndexPolicy, PhysReg, RegCacheConfig, RegisterCache};
use ubrc_frontend::{DegreeOfUsePredictor, GlobalHistory, Yags};
use ubrc_memsys::{Cache, CacheConfig};

fn bench_register_cache(c: &mut Criterion) {
    c.bench_function("regcache_write_read_free", |b| {
        let mut cache = RegisterCache::new(RegCacheConfig::use_based(64, 2), 512);
        let mut now = 0u64;
        for p in 0..512u16 {
            cache.produce(PhysReg(p));
        }
        b.iter(|| {
            for p in 0..256u16 {
                let set = (p % 32) as u16;
                now += 1;
                cache.free(PhysReg(p), set, now);
                cache.produce(PhysReg(p));
                cache.write(PhysReg(p), set, 2, false, 0, now);
                black_box(cache.read(PhysReg(p), set, now + 1));
                black_box(cache.read(PhysReg(p), set, now + 2));
            }
        });
    });
}

fn bench_index_assigners(c: &mut Criterion) {
    for (name, policy) in [
        ("assign_round_robin", IndexPolicy::RoundRobin),
        ("assign_minimum", IndexPolicy::Minimum),
        ("assign_filtered", IndexPolicy::FilteredRoundRobin),
    ] {
        c.bench_function(name, |b| {
            let mut a = IndexAssigner::new(policy, 32, 2);
            let mut i = 0u16;
            b.iter(|| {
                let set = a.assign(PhysReg(i % 512), (i % 8) as u8);
                a.release(set, (i % 8) as u8);
                i = i.wrapping_add(1);
                black_box(set)
            });
        });
    }
}

fn bench_predictors(c: &mut Criterion) {
    c.bench_function("yags_predict_update", |b| {
        let mut yags = Yags::default();
        let mut hist = GlobalHistory::new();
        let mut i = 0u64;
        b.iter(|| {
            let pc = 0x1000 + (i % 257) * 4;
            let taken = i % 3 == 0;
            let pred = yags.predict(pc, hist);
            yags.update(pc, hist, taken, pred);
            hist.push(taken);
            i += 1;
            black_box(pred)
        });
    });
    c.bench_function("douse_train_predict", |b| {
        let mut p = DegreeOfUsePredictor::default();
        let hist = GlobalHistory::new();
        let mut i = 0u64;
        b.iter(|| {
            let pc = 0x1000 + (i % 511) * 4;
            p.train(pc, hist, (i % 4) as u8);
            i += 1;
            black_box(p.predict(pc, hist))
        });
    });
}

fn bench_data_cache(c: &mut Criterion) {
    c.bench_function("l1_cache_access_fill", |b| {
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 32 << 10,
            line_bytes: 64,
            ways: 2,
        });
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(4096 + 64);
            if !cache.access(addr % (1 << 20)) {
                cache.fill(addr % (1 << 20));
            }
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_register_cache, bench_index_assigners, bench_predictors, bench_data_cache
}
criterion_main!(benches);
