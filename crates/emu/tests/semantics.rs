//! Property tests: the emulator's ALU semantics must match Rust's
//! native integer arithmetic, and execution must be deterministic.

use proptest::prelude::*;
use ubrc_emu::{Machine, StepOutcome};
use ubrc_isa::{AluOp, Inst, Program, Reg};

/// Builds a one-instruction program computing `op r3, r1, r2` and runs
/// it with the given register inputs.
fn run_alu(op: AluOp, a: u64, b: u64) -> u64 {
    let program = Program {
        text_base: 0x1000,
        text: vec![
            Inst::Alu {
                op,
                rd: Reg::int(3),
                rs: Reg::int(1),
                rt: Reg::int(2),
            },
            Inst::Halt,
        ],
        data_base: 0x10_0000,
        data: vec![],
        entry: 0x1000,
        symbols: Default::default(),
    };
    let mut m = Machine::new(program);
    m.set_int_reg(1, a);
    m.set_int_reg(2, b);
    m.run(4).unwrap();
    assert!(m.is_halted());
    m.int_reg(3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn add_matches_wrapping_add(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(run_alu(AluOp::Add, a, b), a.wrapping_add(b));
    }

    #[test]
    fn sub_matches_wrapping_sub(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(run_alu(AluOp::Sub, a, b), a.wrapping_sub(b));
    }

    #[test]
    fn mul_matches_wrapping_mul(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(run_alu(AluOp::Mul, a, b), a.wrapping_mul(b));
    }

    #[test]
    fn div_rem_are_signed_and_total(a in any::<u64>(), b in any::<u64>()) {
        let q = run_alu(AluOp::Div, a, b);
        let r = run_alu(AluOp::Rem, a, b);
        if b == 0 {
            prop_assert_eq!(q, 0);
            prop_assert_eq!(r, a);
        } else {
            prop_assert_eq!(q, (a as i64).wrapping_div(b as i64) as u64);
            prop_assert_eq!(r, (a as i64).wrapping_rem(b as i64) as u64);
        }
    }

    #[test]
    fn logic_ops_match(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(run_alu(AluOp::And, a, b), a & b);
        prop_assert_eq!(run_alu(AluOp::Or, a, b), a | b);
        prop_assert_eq!(run_alu(AluOp::Xor, a, b), a ^ b);
        prop_assert_eq!(run_alu(AluOp::Nor, a, b), !(a | b));
    }

    #[test]
    fn shifts_mask_the_amount(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(run_alu(AluOp::Sll, a, b), a << (b & 63));
        prop_assert_eq!(run_alu(AluOp::Srl, a, b), a >> (b & 63));
        prop_assert_eq!(run_alu(AluOp::Sra, a, b), ((a as i64) >> (b & 63)) as u64);
    }

    #[test]
    fn compares_produce_zero_or_one(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(run_alu(AluOp::Slt, a, b), ((a as i64) < (b as i64)) as u64);
        prop_assert_eq!(run_alu(AluOp::Sltu, a, b), (a < b) as u64);
    }

    #[test]
    fn memory_roundtrips_any_value_and_offset(
        value in any::<u64>(),
        slot in 0u64..64,
    ) {
        let src = format!(
            ".data\nbuf: .space 512\n.text\n\
             main: la r1, buf\n\
                   sd r2, {off}(r1)\n\
                   ld r3, {off}(r1)\n\
                   halt\n",
            off = slot * 8
        );
        let program = ubrc_isa::assemble(&src).unwrap();
        let mut m = Machine::new(program);
        m.set_int_reg(2, value);
        m.run(100).unwrap();
        prop_assert_eq!(m.int_reg(3), value);
    }

    #[test]
    fn execution_is_deterministic(seed in any::<u64>()) {
        // The same synthetic program must produce identical record
        // streams on two fresh machines.
        let spec = ubrc_workloads::synthetic::SyntheticSpec {
            blocks: 5,
            block_len: 20,
            ..ubrc_workloads::synthetic::SyntheticSpec::single_use_heavy(seed)
        };
        let program = ubrc_isa::assemble(&spec.generate()).unwrap();
        let mut m1 = Machine::new(program.clone());
        let mut m2 = Machine::new(program);
        loop {
            let a = m1.step().unwrap();
            let b = m2.step().unwrap();
            prop_assert_eq!(&a, &b);
            if a == StepOutcome::Halted {
                break;
            }
        }
    }
}

#[test]
fn oversized_data_segment_is_a_typed_error() {
    let src = ".data\nbuf: .space 4096\n.text\nmain: halt\n";
    let program = ubrc_isa::assemble(src).unwrap();
    let err = Machine::try_with_mem_size(program, 1024).unwrap_err();
    match err {
        ubrc_emu::EmuError::ProgramTooLarge {
            required,
            available,
        } => {
            assert!(required > available);
            assert_eq!(available, 1024);
        }
        other => panic!("wrong error: {other}"),
    }
    assert!(err.to_string().contains("data segment"));
}

#[test]
fn out_of_range_access_is_a_typed_error() {
    let src = "main: li r1, 0x7fffffff\nld r2, 0(r1)\nhalt\n";
    let program = ubrc_isa::assemble(src).unwrap();
    let mut m = Machine::new(program);
    let err = m.run(10).unwrap_err();
    assert!(matches!(err, ubrc_emu::EmuError::BadAccess { .. }));
}
