//! Tests of the emulator's wrong-path (speculative) execution mode:
//! every architectural effect must roll back exactly.

use proptest::prelude::*;
use ubrc_emu::{Machine, StepOutcome};
use ubrc_isa::assemble;

fn machine(src: &str) -> Machine {
    Machine::new(assemble(src).unwrap())
}

#[test]
fn rollback_restores_registers_memory_and_pc() {
    let mut m = machine(
        ".data\ncell: .quad 99\n.text\n\
         main: li r1, 1\n\
         other: li r1, 42\n\
                la r2, cell\n\
                sd r1, 0(r2)\n\
                halt\n",
    );
    // Execute the first instruction on the correct path.
    m.step().unwrap();
    assert_eq!(m.int_reg(1), 1);
    let pc_before = m.pc();
    let cell = m.program().symbol("cell").unwrap();

    // Wrong path: run the `other` block, clobbering r1, r2 and memory.
    m.enter_speculation(m.program().symbol("other").unwrap());
    assert!(m.in_speculation());
    for _ in 0..5 {
        m.step().unwrap();
    }
    assert_eq!(m.int_reg(1), 42);
    assert_eq!(m.read_u64(cell).unwrap(), 42);
    assert!(m.is_halted());

    m.abort_speculation();
    assert!(!m.in_speculation());
    assert_eq!(m.pc(), pc_before);
    assert_eq!(m.int_reg(1), 1);
    assert_eq!(m.read_u64(cell).unwrap(), 99);
    assert!(!m.is_halted());
}

#[test]
fn wrong_path_faults_do_not_corrupt_the_machine() {
    let mut m = machine("main: li r1, 7\n halt\n");
    m.step().unwrap();
    m.enter_speculation(0xdead_0000);
    assert!(m.step().is_err(), "wrong path fetches garbage");
    m.abort_speculation();
    // Correct path continues to completion.
    m.run(10).unwrap();
    assert!(m.is_halted());
    assert_eq!(m.int_reg(1), 7);
}

#[test]
#[should_panic(expected = "nested speculation")]
fn nested_speculation_rejected() {
    let mut m = machine("main: halt\n");
    m.enter_speculation(0x1000);
    m.enter_speculation(0x1000);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn speculation_roundtrip_preserves_all_state(
        seed in any::<u64>(),
        spec_steps in 1usize..60,
    ) {
        use ubrc_workloads::synthetic::SyntheticSpec;
        // A real program; run a prefix, speculate down a shifted PC,
        // roll back, and compare against a machine that never
        // speculated.
        let spec = SyntheticSpec {
            blocks: 4,
            block_len: 30,
            ..SyntheticSpec::single_use_heavy(seed)
        };
        let program = ubrc_isa::assemble(&spec.generate()).unwrap();
        let mut a = Machine::new(program.clone());
        let mut b = Machine::new(program.clone());
        for _ in 0..10 {
            a.step().unwrap();
            b.step().unwrap();
        }
        // Machine A takes a detour from the entry point (a plausible
        // wrong target) and rolls back; stop early on fault/halt.
        a.enter_speculation(program.entry);
        for _ in 0..spec_steps {
            match a.step() {
                Ok(StepOutcome::Executed(_)) => {}
                _ => break,
            }
        }
        a.abort_speculation();
        // Afterwards A and B must step identically to completion.
        loop {
            let ra = a.step().unwrap();
            let rb = b.step().unwrap();
            prop_assert_eq!(&ra, &rb);
            if ra == StepOutcome::Halted {
                break;
            }
        }
        for i in 0..32 {
            prop_assert_eq!(a.int_reg(i), b.int_reg(i), "r{} differs", i);
        }
    }
}
