//! Functional emulator for the UBRC ISA.
//!
//! The emulator executes programs architecturally — one instruction at a
//! time, with exact semantics — and emits an [`ExecRecord`] per retired
//! instruction. The timing simulator (`ubrc-sim`) consumes this stream as
//! its oracle: functional execution runs ahead of the modeled pipeline,
//! which is the standard "execution-driven, functional-first"
//! organization (the paper built the same split on SimpleScalar).
//!
//! # Examples
//!
//! ```
//! use ubrc_emu::Machine;
//! use ubrc_isa::assemble;
//!
//! let program = assemble(
//!     "main: li   r1, 10
//!           li   r2, 0
//!     loop: add  r2, r2, r1
//!           subi r1, r1, 1
//!           bnez r1, loop
//!           halt",
//! )?;
//! let mut m = Machine::new(program);
//! m.run(1_000_000)?;
//! assert_eq!(m.int_reg(2), 55); // 10 + 9 + ... + 1
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod machine;
mod record;

pub use machine::{EmuError, Machine, StepOutcome, DEFAULT_MEM_SIZE};
pub use record::ExecRecord;
