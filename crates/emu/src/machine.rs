use crate::record::ExecRecord;
use std::error::Error;
use std::fmt;
use ubrc_isa::{AluImmOp, AluOp, BranchCond, CvtDir, FpuOp, Inst, MemWidth, Program, Reg};

/// Default memory size: 16 MiB, enough for every bundled workload.
pub const DEFAULT_MEM_SIZE: usize = 16 << 20;

/// Runtime error raised by the emulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EmuError {
    /// The program counter left the text segment (or became unaligned).
    BadPc {
        /// The offending program counter.
        pc: u64,
    },
    /// A load or store touched memory outside the address space.
    BadAccess {
        /// PC of the faulting instruction.
        pc: u64,
        /// The out-of-range effective address.
        addr: u64,
    },
    /// The program's data segment does not fit in the machine's memory.
    ProgramTooLarge {
        /// First byte past the end of the data segment.
        required: u64,
        /// Bytes of memory actually available.
        available: u64,
    },
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::BadPc { pc } => write!(f, "bad program counter {pc:#x}"),
            EmuError::BadAccess { pc, addr } => {
                write!(f, "bad memory access to {addr:#x} at pc {pc:#x}")
            }
            EmuError::ProgramTooLarge {
                required,
                available,
            } => {
                write!(
                    f,
                    "data segment needs {required} bytes but only {available} are available"
                )
            }
        }
    }
}

impl Error for EmuError {}

/// Result of a single [`Machine::step`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StepOutcome {
    /// An instruction executed (including the `halt` itself).
    Executed(ExecRecord),
    /// The machine had already halted; nothing executed.
    Halted,
}

/// Undo-log entry recorded while executing speculatively.
#[derive(Clone, Debug)]
enum Undo {
    IntReg(u8, u64),
    FpReg(u8, f64),
    Mem(u64, [u8; 8], u8),
}

/// Snapshot taken when speculation begins.
#[derive(Clone, Debug)]
struct SpecCheckpoint {
    pc: u64,
    icount: u64,
    halted: bool,
}

/// The architectural state of one program: registers, memory, and PC.
///
/// See the crate docs for an end-to-end example.
#[derive(Clone)]
pub struct Machine {
    program: std::sync::Arc<Program>,
    mem: Vec<u8>,
    int_regs: [u64; 32],
    fp_regs: [f64; 32],
    pc: u64,
    halted: bool,
    icount: u64,
    spec: Option<SpecCheckpoint>,
    undo: Vec<Undo>,
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("pc", &self.pc)
            .field("halted", &self.halted)
            .field("icount", &self.icount)
            .field("mem_size", &self.mem.len())
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Creates a machine with [`DEFAULT_MEM_SIZE`] bytes of memory and
    /// loads the program (data segment copied in, stack pointer at the
    /// top of memory).
    ///
    /// # Panics
    ///
    /// Panics if the program's data segment does not fit in memory.
    pub fn new(program: Program) -> Self {
        Self::with_mem_size(program, DEFAULT_MEM_SIZE)
    }

    /// Creates a machine with an explicit memory size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if the program's data segment does not fit in memory.
    /// Use [`Machine::try_with_mem_size`] for a fallible variant.
    pub fn with_mem_size(program: Program, mem_size: usize) -> Self {
        match Self::try_with_mem_size(program, mem_size) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible constructor: returns [`EmuError::ProgramTooLarge`]
    /// instead of panicking when the data segment does not fit.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::ProgramTooLarge`] when the program's data
    /// segment extends past `mem_size`.
    pub fn try_with_mem_size(program: Program, mem_size: usize) -> Result<Self, EmuError> {
        Self::from_shared(std::sync::Arc::new(program), mem_size)
    }

    /// Creates a fresh machine — initial architectural state, memory
    /// reloaded from the data segment — over the *same* program, shared
    /// rather than deep-copied. This is how the lockstep oracle gets
    /// its second machine without duplicating the instruction stream.
    pub fn fork_fresh(&self) -> Self {
        Self::from_shared(std::sync::Arc::clone(&self.program), self.mem.len())
            .expect("the source machine already loaded this program")
    }

    fn from_shared(program: std::sync::Arc<Program>, mem_size: usize) -> Result<Self, EmuError> {
        let mut mem = vec![0u8; mem_size];
        let base = program.data_base as usize;
        let end = base + program.data.len();
        if end > mem.len() {
            return Err(EmuError::ProgramTooLarge {
                required: end as u64,
                available: mem.len() as u64,
            });
        }
        mem[base..end].copy_from_slice(&program.data);
        let mut int_regs = [0u64; 32];
        int_regs[ubrc_isa::SP.index() as usize] = (mem_size as u64 - 64) & !15;
        Ok(Self {
            pc: program.entry,
            program,
            mem,
            int_regs,
            fp_regs: [0.0; 32],
            halted: false,
            icount: 0,
            spec: None,
            undo: Vec::new(),
        })
    }

    /// The current program counter.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// True once a `halt` has executed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Number of instructions executed so far.
    pub fn instruction_count(&self) -> u64 {
        self.icount
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Reads integer register `i` (`r0` is always zero).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    pub fn int_reg(&self, i: u8) -> u64 {
        self.int_regs[i as usize]
    }

    /// Reads floating-point register `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    pub fn fp_reg(&self, i: u8) -> f64 {
        self.fp_regs[i as usize]
    }

    /// Sets integer register `i` (writes to `r0` are ignored).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    pub fn set_int_reg(&mut self, i: u8, v: u64) {
        if i != 0 {
            self.int_regs[i as usize] = v;
        }
    }

    /// Sets floating-point register `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    pub fn set_fp_reg(&mut self, i: u8, v: f64) {
        self.fp_regs[i as usize] = v;
    }

    fn reg_u64(&self, r: Reg) -> u64 {
        debug_assert!(r.is_int());
        self.int_regs[r.bank_index() as usize]
    }

    fn reg_f64(&self, r: Reg) -> f64 {
        debug_assert!(r.is_fp());
        self.fp_regs[r.bank_index() as usize]
    }

    fn write_reg(&mut self, r: Reg, v: u64) {
        if r.is_int() {
            if !r.is_zero() {
                if self.spec.is_some() {
                    self.undo.push(Undo::IntReg(
                        r.bank_index(),
                        self.int_regs[r.bank_index() as usize],
                    ));
                }
                self.int_regs[r.bank_index() as usize] = v;
            }
        } else {
            self.write_fp(r, f64::from_bits(v));
        }
    }

    fn write_fp(&mut self, r: Reg, v: f64) {
        debug_assert!(r.is_fp());
        if self.spec.is_some() {
            self.undo.push(Undo::FpReg(
                r.bank_index(),
                self.fp_regs[r.bank_index() as usize],
            ));
        }
        self.fp_regs[r.bank_index() as usize] = v;
    }

    /// Reads `width` bytes at `addr`, little-endian.
    fn mem_read(&self, pc: u64, addr: u64, width: MemWidth) -> Result<u64, EmuError> {
        let n = width.bytes() as usize;
        let a = addr as usize;
        if addr.checked_add(width.bytes()).is_none() || a + n > self.mem.len() {
            return Err(EmuError::BadAccess { pc, addr });
        }
        let mut buf = [0u8; 8];
        buf[..n].copy_from_slice(&self.mem[a..a + n]);
        Ok(u64::from_le_bytes(buf))
    }

    fn mem_write(&mut self, pc: u64, addr: u64, width: MemWidth, v: u64) -> Result<(), EmuError> {
        let n = width.bytes() as usize;
        let a = addr as usize;
        if addr.checked_add(width.bytes()).is_none() || a + n > self.mem.len() {
            return Err(EmuError::BadAccess { pc, addr });
        }
        if self.spec.is_some() {
            let mut old = [0u8; 8];
            old[..n].copy_from_slice(&self.mem[a..a + n]);
            self.undo.push(Undo::Mem(addr, old, n as u8));
        }
        self.mem[a..a + n].copy_from_slice(&v.to_le_bytes()[..n]);
        Ok(())
    }

    /// Reads a 64-bit value from memory (for tests and workload setup).
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::BadAccess`] when out of range.
    pub fn read_u64(&self, addr: u64) -> Result<u64, EmuError> {
        self.mem_read(self.pc, addr, MemWidth::Quad)
    }

    /// Writes a 64-bit value to memory (for tests and workload setup).
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::BadAccess`] when out of range.
    pub fn write_u64(&mut self, addr: u64, v: u64) -> Result<(), EmuError> {
        self.mem_write(self.pc, addr, MemWidth::Quad, v)
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError`] on a bad PC or memory fault; the machine
    /// state is unspecified-but-safe afterwards.
    pub fn step(&mut self) -> Result<StepOutcome, EmuError> {
        if self.halted {
            return Ok(StepOutcome::Halted);
        }
        let pc = self.pc;
        let inst = self.program.fetch(pc).ok_or(EmuError::BadPc { pc })?;
        let mut next_pc = pc + 4;
        let mut taken = false;
        let mut mem_addr = None;
        let mut dest_val = None;

        match inst {
            Inst::Nop => {}
            Inst::Halt => {
                self.halted = true;
            }
            Inst::Alu { op, rd, rs, rt } => {
                let a = self.reg_u64(rs);
                let b = self.reg_u64(rt);
                let v = match op {
                    AluOp::Add => a.wrapping_add(b),
                    AluOp::Sub => a.wrapping_sub(b),
                    AluOp::Mul => a.wrapping_mul(b),
                    AluOp::Div => {
                        if b == 0 {
                            0
                        } else {
                            (a as i64).wrapping_div(b as i64) as u64
                        }
                    }
                    AluOp::Rem => {
                        if b == 0 {
                            a
                        } else {
                            (a as i64).wrapping_rem(b as i64) as u64
                        }
                    }
                    AluOp::And => a & b,
                    AluOp::Or => a | b,
                    AluOp::Xor => a ^ b,
                    AluOp::Nor => !(a | b),
                    AluOp::Sll => a << (b & 63),
                    AluOp::Srl => a >> (b & 63),
                    AluOp::Sra => ((a as i64) >> (b & 63)) as u64,
                    AluOp::Slt => ((a as i64) < (b as i64)) as u64,
                    AluOp::Sltu => (a < b) as u64,
                };
                self.write_reg(rd, v);
                dest_val = Some(v);
            }
            Inst::AluImm { op, rd, rs, imm } => {
                let a = self.reg_u64(rs);
                let se = imm as i64 as u64;
                let ze = imm as u16 as u64;
                let v = match op {
                    AluImmOp::Addi => a.wrapping_add(se),
                    AluImmOp::Andi => a & ze,
                    AluImmOp::Ori => a | ze,
                    AluImmOp::Xori => a ^ ze,
                    AluImmOp::Slli => a << (imm as u16 & 63),
                    AluImmOp::Srli => a >> (imm as u16 & 63),
                    AluImmOp::Srai => ((a as i64) >> (imm as u16 & 63)) as u64,
                    AluImmOp::Slti => ((a as i64) < imm as i64) as u64,
                    AluImmOp::Sltiu => (a < se) as u64,
                };
                self.write_reg(rd, v);
                dest_val = Some(v);
            }
            Inst::Lui { rd, imm } => {
                let v = (imm as u64) << 16;
                self.write_reg(rd, v);
                dest_val = Some(v);
            }
            Inst::Load {
                width,
                signed,
                rd,
                base,
                off,
            } => {
                let addr = self.reg_u64(base).wrapping_add(off as i64 as u64);
                mem_addr = Some(addr);
                let raw = self.mem_read(pc, addr, width)?;
                let v = if signed && width != MemWidth::Quad {
                    let shift = 64 - 8 * width.bytes();
                    ((raw << shift) as i64 >> shift) as u64
                } else {
                    raw
                };
                self.write_reg(rd, v);
                dest_val = Some(v);
            }
            Inst::Store {
                width,
                src,
                base,
                off,
            } => {
                let addr = self.reg_u64(base).wrapping_add(off as i64 as u64);
                mem_addr = Some(addr);
                let v = if src.is_fp() {
                    self.reg_f64(src).to_bits()
                } else {
                    self.reg_u64(src)
                };
                self.mem_write(pc, addr, width, v)?;
                dest_val = Some(v);
            }
            Inst::Branch { cond, rs, rt, off } => {
                let a = self.reg_u64(rs);
                let b = self.reg_u64(rt);
                taken = match cond {
                    BranchCond::Eq => a == b,
                    BranchCond::Ne => a != b,
                    BranchCond::Lt => (a as i64) < (b as i64),
                    BranchCond::Ge => (a as i64) >= (b as i64),
                    BranchCond::Ltu => a < b,
                    BranchCond::Geu => a >= b,
                };
                if taken {
                    next_pc = pc
                        .wrapping_add(4)
                        .wrapping_add((off as i64 as u64).wrapping_mul(4));
                }
            }
            Inst::Jump { link, off } => {
                taken = true;
                if link {
                    self.write_reg(ubrc_isa::RA, pc + 4);
                    dest_val = Some(pc + 4);
                }
                next_pc = pc
                    .wrapping_add(4)
                    .wrapping_add((off as i64 as u64).wrapping_mul(4));
            }
            Inst::JumpReg { link, rd, rs } => {
                taken = true;
                let target = self.reg_u64(rs);
                if link {
                    self.write_reg(rd, pc + 4);
                    dest_val = Some(pc + 4);
                }
                next_pc = target;
            }
            Inst::Fpu { op, rd, rs, rt } => {
                let a = self.reg_f64(rs);
                enum FpuResult {
                    Fp(f64),
                    Int(u64),
                }
                let v = match op {
                    FpuOp::Fadd => FpuResult::Fp(a + self.reg_f64(rt)),
                    FpuOp::Fsub => FpuResult::Fp(a - self.reg_f64(rt)),
                    FpuOp::Fmul => FpuResult::Fp(a * self.reg_f64(rt)),
                    FpuOp::Fdiv => FpuResult::Fp(a / self.reg_f64(rt)),
                    FpuOp::Fneg => FpuResult::Fp(-a),
                    FpuOp::Fmov => FpuResult::Fp(a),
                    FpuOp::Feq => FpuResult::Int((a == self.reg_f64(rt)) as u64),
                    FpuOp::Flt => FpuResult::Int((a < self.reg_f64(rt)) as u64),
                    FpuOp::Fle => FpuResult::Int((a <= self.reg_f64(rt)) as u64),
                };
                match v {
                    FpuResult::Fp(x) => {
                        self.write_fp(rd, x);
                        dest_val = Some(x.to_bits());
                    }
                    FpuResult::Int(x) => {
                        self.write_reg(rd, x);
                        dest_val = Some(x);
                    }
                }
            }
            Inst::Cvt { dir, rd, rs } => match dir {
                CvtDir::IntToFp => {
                    let v = self.reg_u64(rs) as i64 as f64;
                    self.write_fp(rd, v);
                    dest_val = Some(v.to_bits());
                }
                CvtDir::FpToInt => {
                    let v = self.reg_f64(rs) as i64 as u64;
                    self.write_reg(rd, v);
                    dest_val = Some(v);
                }
            },
        }

        if self.halted {
            next_pc = pc;
        }
        let record = ExecRecord {
            seq: self.icount,
            pc,
            inst,
            next_pc,
            taken,
            mem_addr,
            dest_val,
        };
        self.pc = next_pc;
        self.icount += 1;
        Ok(StepOutcome::Executed(record))
    }

    /// Begins speculative (wrong-path) execution at `wrong_pc`. All
    /// architectural effects from this point are recorded in an undo
    /// log; [`Machine::abort_speculation`] rolls them back. Used by the
    /// timing simulator to fetch down mispredicted branch paths.
    ///
    /// # Panics
    ///
    /// Panics if the machine is already speculating (the timing model
    /// stalls on nested mispredictions instead of nesting wrong paths).
    pub fn enter_speculation(&mut self, wrong_pc: u64) {
        assert!(self.spec.is_none(), "nested speculation is not supported");
        self.spec = Some(SpecCheckpoint {
            pc: self.pc,
            icount: self.icount,
            halted: self.halted,
        });
        self.undo.clear();
        self.pc = wrong_pc;
        self.halted = false;
    }

    /// True while executing a wrong path begun by
    /// [`Machine::enter_speculation`].
    pub fn in_speculation(&self) -> bool {
        self.spec.is_some()
    }

    /// Rolls back every effect of the current speculation and resumes
    /// the correct path.
    ///
    /// # Panics
    ///
    /// Panics if the machine is not speculating.
    pub fn abort_speculation(&mut self) {
        let cp = self.spec.take().expect("not speculating");
        for undo in self.undo.drain(..).rev() {
            match undo {
                Undo::IntReg(i, v) => self.int_regs[i as usize] = v,
                Undo::FpReg(i, v) => self.fp_regs[i as usize] = v,
                Undo::Mem(addr, old, n) => {
                    let a = addr as usize;
                    self.mem[a..a + n as usize].copy_from_slice(&old[..n as usize]);
                }
            }
        }
        self.pc = cp.pc;
        self.icount = cp.icount;
        self.halted = cp.halted;
    }

    /// Runs until `halt` or until `max_steps` instructions have executed.
    /// Returns the number of instructions executed by this call.
    ///
    /// # Errors
    ///
    /// Propagates the first [`EmuError`] encountered.
    pub fn run(&mut self, max_steps: u64) -> Result<u64, EmuError> {
        let mut n = 0;
        while n < max_steps {
            match self.step()? {
                StepOutcome::Executed(_) => n += 1,
                StepOutcome::Halted => break,
            }
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubrc_isa::assemble;

    fn run_asm(src: &str) -> Machine {
        let p = assemble(src).expect("assembles");
        let mut m = Machine::new(p);
        m.run(1_000_000).expect("runs");
        assert!(m.is_halted(), "program did not halt");
        m
    }

    #[test]
    fn arithmetic_and_logic() {
        let m = run_asm(
            "main: li r1, 7\n\
                   li r2, 3\n\
                   add r3, r1, r2\n\
                   sub r4, r1, r2\n\
                   mul r5, r1, r2\n\
                   div r6, r1, r2\n\
                   rem r7, r1, r2\n\
                   and r8, r1, r2\n\
                   or  r9, r1, r2\n\
                   xor r10, r1, r2\n\
                   halt\n",
        );
        assert_eq!(m.int_reg(3), 10);
        assert_eq!(m.int_reg(4), 4);
        assert_eq!(m.int_reg(5), 21);
        assert_eq!(m.int_reg(6), 2);
        assert_eq!(m.int_reg(7), 1);
        assert_eq!(m.int_reg(8), 3);
        assert_eq!(m.int_reg(9), 7);
        assert_eq!(m.int_reg(10), 4);
    }

    #[test]
    fn division_by_zero_is_defined() {
        let m = run_asm(
            "main: li r1, 9\n\
                   div r2, r1, r0\n\
                   rem r3, r1, r0\n\
                   halt\n",
        );
        assert_eq!(m.int_reg(2), 0);
        assert_eq!(m.int_reg(3), 9);
    }

    #[test]
    fn shifts_and_compares() {
        let m = run_asm(
            "main: li r1, 1\n\
                   slli r2, r1, 40\n\
                   li r3, -8\n\
                   srai r4, r3, 2\n\
                   srli r5, r3, 60\n\
                   slt r6, r3, r1\n\
                   sltu r7, r3, r1\n\
                   halt\n",
        );
        assert_eq!(m.int_reg(2), 1 << 40);
        assert_eq!(m.int_reg(4) as i64, -2);
        assert_eq!(m.int_reg(5), 0xf);
        assert_eq!(m.int_reg(6), 1);
        assert_eq!(m.int_reg(7), 0); // -8 as unsigned is huge
    }

    #[test]
    fn memory_widths_and_sign_extension() {
        let m = run_asm(
            ".data\n\
             x: .quad 0\n\
             .text\n\
             main: la r1, x\n\
                   li r2, -1\n\
                   sb r2, 0(r1)\n\
                   lb r3, 0(r1)\n\
                   lbu r4, 0(r1)\n\
                   li r5, 0x8000\n\
                   sh r5, 2(r1)\n\
                   lh r6, 2(r1)\n\
                   lhu r7, 2(r1)\n\
                   halt\n",
        );
        assert_eq!(m.int_reg(3) as i64, -1);
        assert_eq!(m.int_reg(4), 0xff);
        assert_eq!(m.int_reg(6) as i64, -32768);
        assert_eq!(m.int_reg(7), 0x8000);
    }

    #[test]
    fn loop_and_branches() {
        let m = run_asm(
            "main: li r1, 5\n\
                   li r2, 0\n\
             loop: add r2, r2, r1\n\
                   subi r1, r1, 1\n\
                   bgtz r1, loop\n\
                   halt\n",
        );
        assert_eq!(m.int_reg(2), 15);
    }

    #[test]
    fn call_and_return() {
        let m = run_asm(
            "main: li r1, 4\n\
                   call square\n\
                   halt\n\
             square: mul r2, r1, r1\n\
                   ret\n",
        );
        assert_eq!(m.int_reg(2), 16);
    }

    #[test]
    fn stack_discipline() {
        let m = run_asm(
            "main: subi sp, sp, 16\n\
                   li r1, 42\n\
                   sd r1, 0(sp)\n\
                   li r1, 0\n\
                   ld r2, 0(sp)\n\
                   addi sp, sp, 16\n\
                   halt\n",
        );
        assert_eq!(m.int_reg(2), 42);
    }

    #[test]
    fn floating_point_path() {
        let m = run_asm(
            ".data\n\
             a: .double 1.5\n\
             b: .double 2.5\n\
             out: .space 8\n\
             .text\n\
             main: la r1, a\n\
                   fld f1, 0(r1)\n\
                   fld f2, 8(r1)\n\
                   fadd f3, f1, f2\n\
                   fmul f4, f1, f2\n\
                   flt r2, f1, f2\n\
                   cvtfi r3, f4\n\
                   la r4, out\n\
                   fsd f3, 0(r4)\n\
                   halt\n",
        );
        assert_eq!(m.fp_reg(3), 4.0);
        assert_eq!(m.fp_reg(4), 3.75);
        assert_eq!(m.int_reg(2), 1);
        assert_eq!(m.int_reg(3), 3);
        let out = m.program().symbol("out").unwrap();
        assert_eq!(f64::from_bits(m.read_u64(out).unwrap()), 4.0);
    }

    #[test]
    fn records_carry_control_and_memory_info() {
        let p = assemble(
            "main: li r1, 1\n\
                   beqz r1, main\n\
                   sd r1, 128(r0)\n\
                   halt\n",
        )
        .unwrap();
        let mut m = Machine::new(p);
        let r1 = match m.step().unwrap() {
            StepOutcome::Executed(r) => r,
            _ => panic!(),
        };
        assert_eq!(r1.seq, 0);
        assert!(!r1.redirects());
        let rb = match m.step().unwrap() {
            StepOutcome::Executed(r) => r,
            _ => panic!(),
        };
        assert!(!rb.taken);
        let rs = match m.step().unwrap() {
            StepOutcome::Executed(r) => r,
            _ => panic!(),
        };
        assert_eq!(rs.mem_addr, Some(128));
        let rh = match m.step().unwrap() {
            StepOutcome::Executed(r) => r,
            _ => panic!(),
        };
        assert_eq!(rh.inst, Inst::Halt);
        assert_eq!(m.step().unwrap(), StepOutcome::Halted);
    }

    #[test]
    fn bad_pc_faults() {
        let p = assemble("main: jr r1\n halt\n").unwrap();
        let mut m = Machine::new(p);
        m.set_int_reg(1, 0xdead_0000);
        m.step().unwrap(); // the jump itself executes
        let e = m.step().unwrap_err();
        assert_eq!(e, EmuError::BadPc { pc: 0xdead_0000 });
    }

    #[test]
    fn bad_access_faults() {
        let p = assemble("main: ld r2, 0(r1)\n halt\n").unwrap();
        let mut m = Machine::new(p);
        m.set_int_reg(1, u64::MAX - 2);
        let e = m.step().unwrap_err();
        assert!(matches!(e, EmuError::BadAccess { .. }));
        assert!(e.to_string().contains("bad memory access"));
    }

    #[test]
    fn writes_to_r0_are_discarded() {
        let m = run_asm("main: li r1, 3\n add r0, r1, r1\n halt\n");
        assert_eq!(m.int_reg(0), 0);
    }

    #[test]
    fn run_respects_step_budget() {
        let p = assemble("main: b main\n").unwrap();
        let mut m = Machine::new(p);
        let n = m.run(100).unwrap();
        assert_eq!(n, 100);
        assert!(!m.is_halted());
    }

    #[test]
    fn sp_is_initialized_high_and_aligned() {
        let p = assemble("main: halt\n").unwrap();
        let m = Machine::new(p);
        let sp = m.int_reg(ubrc_isa::SP.index());
        assert_eq!(sp % 16, 0);
        assert!(sp as usize <= DEFAULT_MEM_SIZE);
        assert!(sp as usize >= DEFAULT_MEM_SIZE - 128);
    }
}
