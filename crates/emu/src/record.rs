use ubrc_isa::Inst;

/// The architectural outcome of one executed instruction.
///
/// This is the unit of communication between the functional emulator and
/// the timing simulator: everything the pipeline model needs to know
/// about an instruction's behaviour (control-flow outcome, memory
/// address) without re-executing it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExecRecord {
    /// Dynamic instruction sequence number (0-based, nops included).
    pub seq: u64,
    /// Address the instruction was fetched from.
    pub pc: u64,
    /// The instruction itself.
    pub inst: Inst,
    /// Address of the next instruction actually executed.
    pub next_pc: u64,
    /// For control instructions: whether control transferred away from
    /// the fall-through path. Always `true` for jumps; `false` for
    /// non-control instructions.
    pub taken: bool,
    /// Effective address for loads and stores.
    pub mem_addr: Option<u64>,
    /// Architectural result as raw bits: the value written to the
    /// destination register (FP results via `to_bits`), or the value
    /// stored to memory for stores. `None` for instructions with no
    /// data result (nops, branches, plain jumps, halt).
    pub dest_val: Option<u64>,
}

impl ExecRecord {
    /// True when the instruction redirected control flow.
    pub fn redirects(&self) -> bool {
        self.next_pc != self.pc + 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redirects_compares_against_fallthrough() {
        let r = ExecRecord {
            seq: 0,
            pc: 0x1000,
            inst: Inst::Nop,
            next_pc: 0x1004,
            taken: false,
            mem_addr: None,
            dest_val: None,
        };
        assert!(!r.redirects());
        let r2 = ExecRecord {
            next_pc: 0x2000,
            ..r
        };
        assert!(r2.redirects());
    }
}
