/// Geometry of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Associativity.
    pub ways: usize,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (non-power-of-two line
    /// size, capacity not divisible into `ways` lines per set).
    pub fn sets(&self) -> usize {
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let lines = self.size_bytes / self.line_bytes;
        assert!(
            lines.is_multiple_of(self.ways),
            "capacity must divide into ways"
        );
        let sets = lines / self.ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }
}

/// Hit/miss tallies for one cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// `misses / (hits + misses)`, or `None` with no accesses.
    pub fn miss_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        if total == 0 {
            None
        } else {
            Some(self.misses as f64 / total as f64)
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    tag: u64,
    lru: u64,
    valid: bool,
}

/// A set-associative cache directory with true-LRU replacement.
///
/// Tracks residency only (no data). Used for the L1 instruction, L1
/// data, and L2 caches.
///
/// # Examples
///
/// ```
/// use ubrc_memsys::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig { size_bytes: 256, line_bytes: 64, ways: 2 });
/// assert!(!c.access(0x1000));
/// c.fill(0x1000);
/// assert!(c.access(0x1000));
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>, // sets * ways
    sets: usize,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry (see [`CacheConfig::sets`]).
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        Self {
            config,
            lines: vec![Line::default(); sets * config.ways],
            sets,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated hit/miss statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn line_addr(&self, addr: u64) -> u64 {
        addr / self.config.line_bytes as u64
    }

    fn set_of(&self, line: u64) -> usize {
        (line as usize) & (self.sets - 1)
    }

    /// Looks up `addr`, updating LRU and statistics. Returns `true` on
    /// hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let line = self.line_addr(addr);
        let set = self.set_of(line);
        let ways = self.config.ways;
        let tick = self.tick;
        for l in &mut self.lines[set * ways..(set + 1) * ways] {
            if l.valid && l.tag == line {
                l.lru = tick;
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;
        false
    }

    /// Checks residency without updating LRU or statistics.
    pub fn probe(&self, addr: u64) -> bool {
        let line = self.line_addr(addr);
        let set = self.set_of(line);
        let ways = self.config.ways;
        self.lines[set * ways..(set + 1) * ways]
            .iter()
            .any(|l| l.valid && l.tag == line)
    }

    /// Installs the line containing `addr`, evicting LRU if needed.
    /// Returns the *byte address* of the evicted line, if a valid line
    /// was displaced.
    pub fn fill(&mut self, addr: u64) -> Option<u64> {
        self.tick += 1;
        let line = self.line_addr(addr);
        let set = self.set_of(line);
        let ways = self.config.ways;
        let tick = self.tick;
        let slice = &mut self.lines[set * ways..(set + 1) * ways];
        if let Some(l) = slice.iter_mut().find(|l| l.valid && l.tag == line) {
            l.lru = tick; // already resident
            return None;
        }
        let victim = slice
            .iter_mut()
            .min_by_key(|l| (l.valid, l.lru))
            .expect("ways >= 1");
        let evicted = victim
            .valid
            .then_some(victim.tag * self.config.line_bytes as u64);
        *victim = Line {
            tag: line,
            lru: tick,
            valid: true,
        };
        evicted
    }

    /// Invalidates the line containing `addr`, if resident.
    pub fn invalidate(&mut self, addr: u64) {
        let line = self.line_addr(addr);
        let set = self.set_of(line);
        let ways = self.config.ways;
        for l in &mut self.lines[set * ways..(set + 1) * ways] {
            if l.valid && l.tag == line {
                l.valid = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets, 2 ways, 64B lines.
        Cache::new(CacheConfig {
            size_bytes: 256,
            line_bytes: 64,
            ways: 2,
        })
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x40));
        assert_eq!(c.fill(0x40), None);
        assert!(c.access(0x40));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().miss_rate(), Some(0.5));
    }

    #[test]
    fn same_line_different_offsets_hit() {
        let mut c = tiny();
        c.fill(0x40);
        assert!(c.access(0x7f));
        assert!(!c.access(0x80)); // next line
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny();
        // Set 0 lines: line addresses with bit0 (of line number) == 0:
        // 0x000, 0x080, 0x100 map to sets 0,0? lines 0,2,4 -> set 0,0,0
        // with 2 sets: set = line & 1. Lines 0, 2, 4 are all set 0.
        c.fill(0x000);
        c.fill(0x100);
        c.access(0x000); // make line 0 MRU
        let evicted = c.fill(0x200); // evicts line at 0x100
        assert_eq!(evicted, Some(0x100));
        assert!(c.probe(0x000));
        assert!(!c.probe(0x100));
        assert!(c.probe(0x200));
    }

    #[test]
    fn fill_of_resident_line_does_not_evict() {
        let mut c = tiny();
        c.fill(0x000);
        c.fill(0x100);
        assert_eq!(c.fill(0x000), None);
        assert!(c.probe(0x100));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.fill(0x40);
        c.invalidate(0x40);
        assert!(!c.probe(0x40));
    }

    #[test]
    fn probe_does_not_touch_stats_or_lru() {
        let mut c = tiny();
        c.fill(0x000);
        c.fill(0x100);
        for _ in 0..10 {
            assert!(c.probe(0x100));
        }
        // 0x000 was filled first; probes must not refresh 0x100.
        // Touch 0x000 via access, then fill a conflicting line: the LRU
        // victim must be 0x100.
        c.access(0x000);
        assert_eq!(c.fill(0x200), Some(0x100));
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn table1_geometries_are_consistent() {
        // L1: 32KB 2-way 64B lines; L2: 1MB 4-way 128B lines.
        assert_eq!(
            CacheConfig {
                size_bytes: 32 << 10,
                line_bytes: 64,
                ways: 2
            }
            .sets(),
            256
        );
        assert_eq!(
            CacheConfig {
                size_bytes: 1 << 20,
                line_bytes: 128,
                ways: 4
            }
            .sets(),
            2048
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 192,
            line_bytes: 48,
            ways: 2,
        });
    }
}
