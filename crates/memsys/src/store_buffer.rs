use std::collections::VecDeque;

/// A coalescing store buffer.
///
/// Retired stores enter the buffer (coalescing with an in-flight entry
/// for the same line) and drain to the data cache in the background at a
/// fixed rate. When the buffer is full and the incoming store cannot
/// coalesce, retirement must stall — the caller checks the return of
/// [`StoreBuffer::push`].
///
/// # Examples
///
/// ```
/// use ubrc_memsys::StoreBuffer;
///
/// let mut sb = StoreBuffer::new(2, 64, 2);
/// assert!(sb.push(0x1000, 0));
/// assert!(sb.push(0x1008, 0)); // coalesces into the same line
/// assert_eq!(sb.len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct StoreBuffer {
    entries: VecDeque<(u64, u64)>, // (line, enqueue time)
    capacity: usize,
    line_bytes: u64,
    drain_interval: u64,
    last_drain: u64,
}

impl StoreBuffer {
    /// Creates a buffer of `capacity` line entries that drains one entry
    /// every `drain_interval` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `drain_interval` is zero, or
    /// `line_bytes` is not a power of two.
    pub fn new(capacity: usize, line_bytes: usize, drain_interval: u64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(drain_interval > 0, "drain interval must be positive");
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        Self {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            line_bytes: line_bytes as u64,
            drain_interval,
            last_drain: 0,
        }
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no stores are buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when a non-coalescing store would have to stall.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Attempts to retire a store to `addr` at time `now`. Returns
    /// `false` when the buffer is full and the store does not coalesce
    /// (the caller must stall retirement and retry).
    pub fn push(&mut self, addr: u64, now: u64) -> bool {
        let line = addr / self.line_bytes;
        if self.entries.iter().any(|&(l, _)| l == line) {
            return true; // coalesced
        }
        if self.entries.len() == self.capacity {
            return false;
        }
        self.entries.push_back((line, now));
        true
    }

    /// Advances time to `now`, draining at the configured rate. Returns
    /// the byte addresses of lines written out (the caller forwards them
    /// to the data cache).
    pub fn drain(&mut self, now: u64) -> Vec<u64> {
        let mut out = Vec::new();
        while !self.entries.is_empty() && now.saturating_sub(self.last_drain) >= self.drain_interval
        {
            let (line, _) = self.entries.pop_front().expect("non-empty");
            out.push(line * self.line_bytes);
            self.last_drain += self.drain_interval;
        }
        if self.entries.is_empty() {
            self.last_drain = now;
        }
        out
    }

    /// True when a load from `addr` would be forwarded from a buffered
    /// (not yet drained) store line.
    pub fn probe(&self, addr: u64) -> bool {
        let line = addr / self.line_bytes;
        self.entries.iter().any(|&(l, _)| l == line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalescing_keeps_one_entry_per_line() {
        let mut sb = StoreBuffer::new(4, 64, 2);
        assert!(sb.push(0x100, 0));
        assert!(sb.push(0x108, 0));
        assert!(sb.push(0x13f, 0));
        assert_eq!(sb.len(), 1);
        assert!(sb.push(0x140, 0));
        assert_eq!(sb.len(), 2);
    }

    #[test]
    fn full_buffer_rejects_new_lines_but_coalesces() {
        let mut sb = StoreBuffer::new(2, 64, 1000);
        assert!(sb.push(0x000, 0));
        assert!(sb.push(0x040, 0));
        assert!(!sb.push(0x080, 0)); // full, new line
        assert!(sb.push(0x000, 0)); // full, but coalesces
    }

    #[test]
    fn drain_rate_is_respected() {
        let mut sb = StoreBuffer::new(4, 64, 2);
        sb.push(0x000, 0);
        sb.push(0x040, 0);
        sb.push(0x080, 0);
        assert!(sb.drain(1).is_empty());
        assert_eq!(sb.drain(2), vec![0x000]);
        assert_eq!(sb.drain(6), vec![0x040, 0x080]);
        assert!(sb.is_empty());
    }

    #[test]
    fn probe_sees_undrained_lines() {
        let mut sb = StoreBuffer::new(4, 64, 100);
        sb.push(0x200, 0);
        assert!(sb.probe(0x23f));
        assert!(!sb.probe(0x240));
    }

    #[test]
    fn drain_clock_does_not_accumulate_credit_while_empty() {
        let mut sb = StoreBuffer::new(4, 64, 10);
        sb.push(0x000, 0);
        assert_eq!(sb.drain(10).len(), 1);
        // Long idle period...
        assert!(sb.drain(1000).is_empty());
        sb.push(0x040, 1000);
        // ...must not let the next drain happen instantly.
        assert!(sb.drain(1001).is_empty());
        assert_eq!(sb.drain(1010).len(), 1);
    }
}
