//! Cache-hierarchy timing models for the UBRC simulator.
//!
//! Implements the memory system of Table 1 of the paper: 32KB 2-way L1
//! instruction and data caches (64-byte lines), a 1MB 4-way unified L2
//! (128-byte lines, 12-cycle latency), 64-entry unified prefetch/victim
//! buffers on each level, a 16-entry coalescing store buffer, a
//! unit-stride prefetcher, and a 180-cycle memory.
//!
//! These are *latency* models: the functional emulator owns the data, so
//! the hierarchy only tracks which lines are resident and answers "how
//! long does this access take". Bandwidth contention below the L1 and
//! MSHR occupancy are not modeled (the paper's evaluation is
//! register-file-bound; see DESIGN.md).
//!
//! # Examples
//!
//! ```
//! use ubrc_memsys::{MemSys, MemSysConfig};
//!
//! let mut mem = MemSys::new(MemSysConfig::table1());
//! let cold = mem.load_latency(0x8000, 0);
//! let warm = mem.load_latency(0x8000, 1);
//! assert!(cold > warm); // first touch misses all the way to memory
//! assert_eq!(warm, 4);  // L1 hit: 4-cycle load-to-use
//! ```

#![warn(missing_docs)]

mod buffer;
mod cache;
mod hierarchy;
mod store_buffer;

pub use buffer::LineBuffer;
pub use cache::{Cache, CacheConfig, CacheStats};
pub use hierarchy::{AccessLevel, MemSys, MemSysConfig, MemSysStats};
pub use store_buffer::StoreBuffer;
