use crate::buffer::LineBuffer;
use crate::cache::{Cache, CacheConfig};
use crate::store_buffer::StoreBuffer;

/// Latency and geometry of the full memory hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemSysConfig {
    /// L1 instruction/data cache geometry (both use this).
    pub l1: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// Load-to-use latency on an L1 hit.
    pub l1_load_to_use: u32,
    /// Extra cycles for a hit in the L1 prefetch/victim buffer.
    pub l1_buffer_extra: u32,
    /// L2 access latency (added to the L1 latency on an L1 miss).
    pub l2_latency: u32,
    /// Main memory latency (added on an L2 miss; critical-word-first is
    /// folded in, per Table 1).
    pub memory_latency: u32,
    /// Capacity of each prefetch/victim buffer, in lines.
    pub buffer_lines: usize,
    /// Store buffer entries.
    pub store_buffer_entries: usize,
    /// Cycles between store-buffer drains.
    pub store_drain_interval: u64,
    /// Enables the opportunistic unit-stride prefetcher.
    pub prefetch: bool,
}

impl MemSysConfig {
    /// The configuration of Table 1 of the paper.
    pub fn table1() -> Self {
        Self {
            l1: CacheConfig {
                size_bytes: 32 << 10,
                line_bytes: 64,
                ways: 2,
            },
            l2: CacheConfig {
                size_bytes: 1 << 20,
                line_bytes: 128,
                ways: 4,
            },
            l1_load_to_use: 4,
            l1_buffer_extra: 2,
            l2_latency: 12,
            memory_latency: 180,
            buffer_lines: 64,
            store_buffer_entries: 16,
            store_drain_interval: 2,
            prefetch: true,
        }
    }
}

impl Default for MemSysConfig {
    fn default() -> Self {
        Self::table1()
    }
}

/// Which level satisfied an access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessLevel {
    /// L1 hit (or store-buffer forward).
    L1,
    /// Hit in the L1 prefetch/victim buffer.
    L1Buffer,
    /// L2 hit.
    L2,
    /// Hit in the L2 prefetch/victim buffer.
    L2Buffer,
    /// Main memory.
    Memory,
}

/// Access counts by satisfying level, separately for loads and fetches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemSysStats {
    /// Data-side accesses satisfied at [`AccessLevel::L1`].
    pub d_l1: u64,
    /// Data-side accesses satisfied by the L1 buffer.
    pub d_l1_buffer: u64,
    /// Data-side accesses satisfied at L2 (or its buffer).
    pub d_l2: u64,
    /// Data-side accesses that went to memory.
    pub d_memory: u64,
    /// Instruction fetches satisfied at L1.
    pub i_l1: u64,
    /// Instruction fetches that missed the L1.
    pub i_miss: u64,
}

/// The full two-level hierarchy with buffers, store buffer, and
/// prefetcher. See the crate docs for an example.
#[derive(Clone, Debug)]
pub struct MemSys {
    config: MemSysConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    l1_buf: LineBuffer,
    l2_buf: LineBuffer,
    store_buf: StoreBuffer,
    stats: MemSysStats,
}

impl MemSys {
    /// Creates an empty hierarchy.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent cache geometry.
    pub fn new(config: MemSysConfig) -> Self {
        Self {
            l1i: Cache::new(config.l1),
            l1d: Cache::new(config.l1),
            l2: Cache::new(config.l2),
            l1_buf: LineBuffer::new(config.buffer_lines, config.l1.line_bytes),
            l2_buf: LineBuffer::new(config.buffer_lines, config.l2.line_bytes),
            store_buf: StoreBuffer::new(
                config.store_buffer_entries,
                config.l1.line_bytes,
                config.store_drain_interval,
            ),
            config,
            stats: MemSysStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MemSysConfig {
        &self.config
    }

    /// Access statistics.
    pub fn stats(&self) -> &MemSysStats {
        &self.stats
    }

    /// Resolves where a data-side access hits, performing fills and
    /// victim movement.
    fn access_data(&mut self, addr: u64) -> AccessLevel {
        if self.store_buf.probe(addr) {
            // Store-to-load forward from the coalescing buffer.
            return AccessLevel::L1;
        }
        if self.l1d.access(addr) {
            return AccessLevel::L1;
        }
        // L1 miss: on the paper's machine the unit-stride prefetcher
        // opportunistically pulls the next line into the L1 buffer.
        if self.config.prefetch {
            let next = addr + self.config.l1.line_bytes as u64;
            if !self.l1d.probe(next) {
                self.l1_buf.insert(next);
            }
        }
        if self.l1_buf.take(addr) {
            // Promote into L1.
            if let Some(victim) = self.l1d.fill(addr) {
                self.l1_buf.insert(victim);
            }
            return AccessLevel::L1Buffer;
        }
        // Fill the L1 from below.
        if let Some(victim) = self.l1d.fill(addr) {
            self.l1_buf.insert(victim);
        }
        if self.l2.access(addr) {
            return AccessLevel::L2;
        }
        if self.l2_buf.take(addr) {
            if let Some(victim) = self.l2.fill(addr) {
                self.l2_buf.insert(victim);
            }
            return AccessLevel::L2Buffer;
        }
        if let Some(victim) = self.l2.fill(addr) {
            self.l2_buf.insert(victim);
        }
        AccessLevel::Memory
    }

    /// Latency contribution of the satisfying level, measured as
    /// load-to-use cycles.
    fn latency_of(&self, level: AccessLevel) -> u32 {
        let c = &self.config;
        match level {
            AccessLevel::L1 => c.l1_load_to_use,
            AccessLevel::L1Buffer => c.l1_load_to_use + c.l1_buffer_extra,
            AccessLevel::L2 => c.l1_load_to_use + c.l2_latency,
            AccessLevel::L2Buffer => c.l1_load_to_use + c.l2_latency + c.l1_buffer_extra,
            AccessLevel::Memory => c.l1_load_to_use + c.l2_latency + c.memory_latency,
        }
    }

    /// Performs a load at time `now` and returns its load-to-use
    /// latency in cycles (4 on an L1 hit, per Table 1).
    pub fn load_latency(&mut self, addr: u64, now: u64) -> u32 {
        self.drain_stores(now);
        let level = self.access_data(addr);
        match level {
            AccessLevel::L1 => self.stats.d_l1 += 1,
            AccessLevel::L1Buffer => self.stats.d_l1_buffer += 1,
            AccessLevel::L2 | AccessLevel::L2Buffer => self.stats.d_l2 += 1,
            AccessLevel::Memory => self.stats.d_memory += 1,
        }
        self.latency_of(level)
    }

    /// Attempts to retire a store at time `now`. Returns `false` when
    /// the store buffer is full and retirement must stall this cycle.
    pub fn store_retire(&mut self, addr: u64, now: u64) -> bool {
        self.drain_stores(now);
        self.store_buf.push(addr, now)
    }

    /// Performs an instruction fetch and returns its latency beyond the
    /// pipelined fetch stages (0 on an L1-I hit).
    ///
    /// The unit-stride prefetcher also runs ahead of the fetch stream:
    /// the next sequential line is pulled into the L1-I (Table 1's
    /// prefetch buffers sit on both cache levels), so straight-line
    /// code pays one cold miss per region, not one per line.
    pub fn fetch_latency(&mut self, pc: u64) -> u32 {
        let latency = if self.l1i.access(pc) {
            self.stats.i_l1 += 1;
            0
        } else {
            self.stats.i_miss += 1;
            self.l1i.fill(pc);
            if self.l2.access(pc) {
                self.config.l2_latency
            } else {
                self.l2.fill(pc);
                self.config.l2_latency + self.config.memory_latency
            }
        };
        if self.config.prefetch {
            let next = pc + self.config.l1.line_bytes as u64;
            if !self.l1i.probe(next) {
                self.l1i.fill(next);
                if !self.l2.access(next) {
                    self.l2.fill(next);
                }
            }
        }
        latency
    }

    fn drain_stores(&mut self, now: u64) {
        for line in self.store_buf.drain(now) {
            // Drained stores install their line in the L1 (write-
            // allocate) and the L2.
            if !self.l1d.access(line) {
                if let Some(victim) = self.l1d.fill(line) {
                    self.l1_buf.insert(victim);
                }
                if !self.l2.access(line) {
                    self.l2.fill(line);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_costs_full_memory_latency() {
        let mut m = MemSys::new(MemSysConfig::table1());
        assert_eq!(m.load_latency(0x9000, 0), 4 + 12 + 180);
        assert_eq!(m.load_latency(0x9000, 1), 4);
        assert_eq!(m.stats().d_memory, 1);
        assert_eq!(m.stats().d_l1, 1);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let cfg = MemSysConfig {
            l1: CacheConfig {
                size_bytes: 128,
                line_bytes: 64,
                ways: 1,
            },
            buffer_lines: 1,
            prefetch: false,
            ..MemSysConfig::table1()
        };
        let mut m = MemSys::new(cfg);
        m.load_latency(0x0000, 0);
        m.load_latency(0x1000, 0); // evicts 0x0000 into the 1-line buffer
        m.load_latency(0x2000, 0); // 0x1000's eviction displaces 0x0000
        let lat = m.load_latency(0x0000, 0);
        assert_eq!(lat, 4 + 12, "expected an L2 hit");
    }

    #[test]
    fn victim_buffer_catches_recent_evictions() {
        let cfg = MemSysConfig {
            l1: CacheConfig {
                size_bytes: 128,
                line_bytes: 64,
                ways: 1,
            },
            prefetch: false,
            ..MemSysConfig::table1()
        };
        let mut m = MemSys::new(cfg);
        m.load_latency(0x0000, 0);
        m.load_latency(0x1000, 0); // 0x0000 evicted into the buffer
        assert_eq!(m.load_latency(0x0000, 0), 4 + 2);
    }

    #[test]
    fn unit_stride_prefetch_hides_the_next_line() {
        let mut m = MemSys::new(MemSysConfig::table1());
        m.load_latency(0x4000, 0); // miss; prefetches 0x4040
        let lat = m.load_latency(0x4040, 0);
        assert_eq!(lat, 4 + 2, "expected an L1-buffer (prefetch) hit");
    }

    #[test]
    fn store_buffer_forwards_and_stalls() {
        let mut m = MemSys::new(MemSysConfig {
            store_buffer_entries: 1,
            store_drain_interval: 1_000_000,
            ..MemSysConfig::table1()
        });
        assert!(m.store_retire(0x5000, 0));
        // Load from the same line forwards at L1 latency.
        assert_eq!(m.load_latency(0x5008, 0), 4);
        // A second line cannot enter the 1-entry buffer.
        assert!(!m.store_retire(0x6000, 0));
    }

    #[test]
    fn fetch_path_uses_l1i_and_l2() {
        let mut m = MemSys::new(MemSysConfig::table1());
        assert_eq!(m.fetch_latency(0x1000), 12 + 180);
        assert_eq!(m.fetch_latency(0x1000), 0);
        // A data access to the same address does not touch the L1-I but
        // hits in the shared L2.
        assert_eq!(m.load_latency(0x1000, 0), 4 + 12);
    }

    #[test]
    fn drained_stores_become_visible_in_l1() {
        let mut m = MemSys::new(MemSysConfig {
            store_drain_interval: 1,
            prefetch: false,
            ..MemSysConfig::table1()
        });
        assert!(m.store_retire(0x7000, 0));
        // After the drain interval passes, the line is installed.
        assert_eq!(m.load_latency(0x7000, 10), 4);
        assert_eq!(m.stats().d_l1, 1);
    }
}
