use std::collections::VecDeque;

/// A small fully-associative FIFO buffer of cache lines, used for the
/// unified prefetch/victim buffers attached to the L1 and L2 caches.
///
/// Victims displaced from the cache and prefetched lines both land here;
/// a hit promotes the line back into the cache (the caller handles the
/// promotion) and removes it from the buffer.
///
/// # Examples
///
/// ```
/// use ubrc_memsys::LineBuffer;
///
/// let mut b = LineBuffer::new(2, 64);
/// b.insert(0x1000);
/// assert!(b.take(0x1000));  // hit consumes the entry
/// assert!(!b.take(0x1000));
/// ```
#[derive(Clone, Debug)]
pub struct LineBuffer {
    lines: VecDeque<u64>,
    capacity: usize,
    line_bytes: u64,
}

impl LineBuffer {
    /// Creates a buffer holding up to `capacity` lines of `line_bytes`
    /// each.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `line_bytes` is not a power of
    /// two.
    pub fn new(capacity: usize, line_bytes: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        Self {
            lines: VecDeque::with_capacity(capacity),
            capacity,
            line_bytes: line_bytes as u64,
        }
    }

    fn line_of(&self, addr: u64) -> u64 {
        addr / self.line_bytes
    }

    /// Number of buffered lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Inserts the line containing `addr`, evicting the oldest entry if
    /// full. Re-inserting a resident line refreshes its age.
    pub fn insert(&mut self, addr: u64) {
        let line = self.line_of(addr);
        if let Some(pos) = self.lines.iter().position(|&l| l == line) {
            self.lines.remove(pos);
        } else if self.lines.len() == self.capacity {
            self.lines.pop_front();
        }
        self.lines.push_back(line);
    }

    /// Checks residency without consuming.
    pub fn probe(&self, addr: u64) -> bool {
        let line = self.line_of(addr);
        self.lines.iter().any(|&l| l == line)
    }

    /// Removes and returns whether the line containing `addr` was
    /// present (a buffer hit that promotes the line into the cache).
    pub fn take(&mut self, addr: u64) -> bool {
        let line = self.line_of(addr);
        if let Some(pos) = self.lines.iter().position(|&l| l == line) {
            self.lines.remove(pos);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_eviction_when_full() {
        let mut b = LineBuffer::new(2, 64);
        b.insert(0x000);
        b.insert(0x040);
        b.insert(0x080); // evicts 0x000
        assert!(!b.probe(0x000));
        assert!(b.probe(0x040));
        assert!(b.probe(0x080));
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_age() {
        let mut b = LineBuffer::new(2, 64);
        b.insert(0x000);
        b.insert(0x040);
        b.insert(0x000); // refresh: 0x040 is now oldest
        b.insert(0x080);
        assert!(b.probe(0x000));
        assert!(!b.probe(0x040));
    }

    #[test]
    fn take_consumes() {
        let mut b = LineBuffer::new(4, 64);
        b.insert(0x100);
        assert!(b.take(0x13f)); // same line
        assert!(b.is_empty());
    }

    #[test]
    fn addresses_in_same_line_alias() {
        let mut b = LineBuffer::new(4, 64);
        b.insert(0x1000);
        assert!(b.probe(0x1020));
        assert!(!b.probe(0x1040));
    }
}
