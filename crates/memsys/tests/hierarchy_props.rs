//! Property tests for the memory hierarchy: latency answers must always
//! be one of the architected levels, repeat accesses must never be
//! slower, and the cache directory must agree with a reference model.

use proptest::prelude::*;
use std::collections::HashSet;
use ubrc_memsys::{Cache, CacheConfig, MemSys, MemSysConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn load_latency_is_always_an_architected_value(
        addrs in proptest::collection::vec(0u64..(1 << 22), 1..300),
    ) {
        let cfg = MemSysConfig::table1();
        let valid = [
            cfg.l1_load_to_use,
            cfg.l1_load_to_use + cfg.l1_buffer_extra,
            cfg.l1_load_to_use + cfg.l2_latency,
            cfg.l1_load_to_use + cfg.l2_latency + cfg.l1_buffer_extra,
            cfg.l1_load_to_use + cfg.l2_latency + cfg.memory_latency,
        ];
        let mut mem = MemSys::new(cfg);
        for (i, &a) in addrs.iter().enumerate() {
            let lat = mem.load_latency(a, i as u64);
            prop_assert!(valid.contains(&lat), "unexpected latency {lat}");
        }
    }

    #[test]
    fn immediate_reaccess_is_an_l1_hit(
        addrs in proptest::collection::vec(0u64..(1 << 22), 1..100),
    ) {
        let mut mem = MemSys::new(MemSysConfig::table1());
        for (i, &a) in addrs.iter().enumerate() {
            mem.load_latency(a, 2 * i as u64);
            let again = mem.load_latency(a, 2 * i as u64 + 1);
            prop_assert_eq!(again, 4, "second access to {:#x} missed", a);
        }
    }

    #[test]
    fn cache_directory_matches_reference_set_model(
        ops in proptest::collection::vec((0u64..(1 << 14), any::<bool>()), 1..400),
    ) {
        // Direct-mapped cache vs. a reference model: a line is resident
        // iff it was the last line filled into its set.
        let line = 64u64;
        let sets = 16u64;
        let mut cache = Cache::new(CacheConfig {
            size_bytes: (sets * line) as usize,
            line_bytes: line as usize,
            ways: 1,
        });
        let mut reference = vec![None::<u64>; sets as usize];
        for (addr, is_fill) in ops {
            let l = addr / line;
            let set = (l % sets) as usize;
            if is_fill {
                cache.fill(addr);
                reference[set] = Some(l);
            } else {
                let hit = cache.access(addr);
                prop_assert_eq!(hit, reference[set] == Some(l));
            }
        }
    }

    #[test]
    fn store_buffer_never_loses_or_duplicates_lines(
        stores in proptest::collection::vec(0u64..(1 << 16), 1..200),
    ) {
        use ubrc_memsys::StoreBuffer;
        let mut sb = StoreBuffer::new(16, 64, 1);
        let mut now = 0u64;
        let mut pending: HashSet<u64> = HashSet::new();
        let mut drained: Vec<u64> = Vec::new();
        for addr in stores {
            now += 1;
            for line in sb.drain(now) {
                drained.push(line);
                pending.remove(&(line / 64));
            }
            if sb.push(addr, now) {
                pending.insert(addr / 64);
            }
        }
        // Drain everything left.
        now += 1000;
        for line in sb.drain(now) {
            drained.push(line);
            pending.remove(&(line / 64));
        }
        prop_assert!(pending.is_empty(), "lines stuck in the buffer");
        // No duplicates: coalescing guarantees one in-flight entry per
        // line, so consecutive drains of the same line imply a push
        // between them — which our pending-set accounting verified.
        prop_assert!(sb.is_empty());
    }

    #[test]
    fn fetch_path_is_idempotent(pcs in proptest::collection::vec(0x1000u64..0x40000, 1..200)) {
        let mut mem = MemSys::new(MemSysConfig::table1());
        for &pc in &pcs {
            mem.fetch_latency(pc);
            prop_assert_eq!(mem.fetch_latency(pc), 0, "refetch of {:#x} missed", pc);
        }
    }
}
