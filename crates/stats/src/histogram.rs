use std::collections::BTreeMap;
use std::fmt;

/// An exact integer histogram over `u64` samples.
///
/// Backed by a [`BTreeMap`] so percentile queries walk buckets in value
/// order. The simulator records register lifetime phases, occupancy
/// snapshots, and dependence distances here; counts can reach billions, so
/// all tallies are `u64`.
///
/// # Examples
///
/// ```
/// use ubrc_stats::Histogram;
///
/// let mut h = Histogram::new();
/// h.record_n(2, 3); // three samples of value 2
/// h.record(10);
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.median(), Some(2));
/// assert_eq!(h.max(), Some(10));
/// assert!((h.mean().unwrap() - 4.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: BTreeMap<u64, u64>,
    count: u64,
    sum: u128,
}

/// One point of a cumulative distribution: `fraction` of all samples were
/// `<= value`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CdfPoint {
    /// Sample value (inclusive upper bound of the cumulative bucket).
    pub value: u64,
    /// Fraction of samples at or below `value`, in `[0, 1]`.
    pub fraction: f64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a single sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` samples of `value`. Recording zero samples is a no-op.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        *self.buckets.entry(value).or_insert(0) += n;
        self.count += n;
        self.sum += value as u128 * n as u128;
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (&v, &n) in &other.buckets {
            self.record_n(v, n);
        }
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Smallest recorded value, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        self.buckets.keys().next().copied()
    }

    /// Largest recorded value, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        self.buckets.keys().next_back().copied()
    }

    /// The `p`-th percentile (nearest-rank method), or `None` if empty.
    ///
    /// `p` is clamped to `[0, 100]`. `percentile(50.0)` is the median;
    /// `percentile(100.0)` equals [`Histogram::max`].
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        // Nearest-rank: the smallest value v such that at least
        // ceil(p/100 * count) samples are <= v.
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (&v, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Some(v);
            }
        }
        self.max()
    }

    /// Median sample (50th percentile, nearest-rank), or `None` if empty.
    pub fn median(&self) -> Option<u64> {
        self.percentile(50.0)
    }

    /// Number of samples with value `<= v`.
    pub fn count_le(&self, v: u64) -> u64 {
        self.buckets.range(..=v).map(|(_, &n)| n).sum()
    }

    /// Fraction of samples with value `<= v`, or `None` if empty.
    pub fn fraction_le(&self, v: u64) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.count_le(v) as f64 / self.count as f64)
        }
    }

    /// Iterates over `(value, count)` buckets in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().map(|(&v, &n)| (v, n))
    }

    /// The full cumulative distribution, one point per distinct value.
    ///
    /// Returns an empty vector when the histogram is empty.
    pub fn cdf(&self) -> Vec<CdfPoint> {
        let mut points = Vec::with_capacity(self.buckets.len());
        let mut seen = 0u64;
        for (&v, &n) in &self.buckets {
            seen += n;
            points.push(CdfPoint {
                value: v,
                fraction: seen as f64 / self.count as f64,
            });
        }
        points
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.min(), self.median(), self.max(), self.mean()) {
            (Some(lo), Some(med), Some(hi), Some(mean)) => write!(
                f,
                "n={} min={} med={} max={} mean={:.2}",
                self.count, lo, med, hi, mean
            ),
            _ => write!(f, "n=0 (empty)"),
        }
    }
}

impl FromIterator<u64> for Histogram {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut h = Histogram::new();
        for v in iter {
            h.record(v);
        }
        h
    }
}

impl Extend<u64> for Histogram {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_statistics() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.median(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.percentile(90.0), None);
        assert!(h.cdf().is_empty());
        assert_eq!(h.to_string(), "n=0 (empty)");
    }

    #[test]
    fn single_sample() {
        let mut h = Histogram::new();
        h.record(7);
        assert_eq!(h.count(), 1);
        assert_eq!(h.median(), Some(7));
        assert_eq!(h.percentile(0.0), Some(7));
        assert_eq!(h.percentile(100.0), Some(7));
        assert_eq!(h.mean(), Some(7.0));
    }

    #[test]
    fn median_of_even_count_is_lower_middle() {
        // Nearest-rank median of {1,2,3,4} is the 2nd sample.
        let h: Histogram = [1u64, 2, 3, 4].into_iter().collect();
        assert_eq!(h.median(), Some(2));
    }

    #[test]
    fn percentiles_match_nearest_rank_definition() {
        let h: Histogram = (1..=100u64).collect();
        assert_eq!(h.percentile(50.0), Some(50));
        assert_eq!(h.percentile(90.0), Some(90));
        assert_eq!(h.percentile(1.0), Some(1));
        assert_eq!(h.percentile(100.0), Some(100));
        // Clamping.
        assert_eq!(h.percentile(-5.0), Some(1));
        assert_eq!(h.percentile(250.0), Some(100));
    }

    #[test]
    fn record_n_zero_is_noop() {
        let mut h = Histogram::new();
        h.record_n(5, 0);
        assert!(h.is_empty());
    }

    #[test]
    fn count_le_and_fraction() {
        let h: Histogram = [1u64, 1, 2, 8].into_iter().collect();
        assert_eq!(h.count_le(0), 0);
        assert_eq!(h.count_le(1), 2);
        assert_eq!(h.count_le(2), 3);
        assert_eq!(h.count_le(100), 4);
        assert_eq!(h.fraction_le(2), Some(0.75));
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let h: Histogram = [3u64, 1, 4, 1, 5, 9, 2, 6].into_iter().collect();
        let cdf = h.cdf();
        assert!(cdf.windows(2).all(|w| w[0].value < w[1].value));
        assert!(cdf.windows(2).all(|w| w[0].fraction <= w[1].fraction));
        assert!((cdf.last().unwrap().fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a: Histogram = [1u64, 2].into_iter().collect();
        let b: Histogram = [2u64, 3].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.count_le(2), 3);
        assert_eq!(a.sum(), 8);
    }

    #[test]
    fn extend_adds_samples() {
        let mut h = Histogram::new();
        h.extend([5u64, 6, 7]);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn display_summarizes() {
        let h: Histogram = [1u64, 3].into_iter().collect();
        assert_eq!(h.to_string(), "n=2 min=1 med=1 max=3 mean=2.00");
    }
}
