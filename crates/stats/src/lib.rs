//! Statistics utilities shared by the UBRC register-caching simulator.
//!
//! The timing simulator and the experiment harness need a small set of
//! measurement tools: integer histograms with percentile queries (register
//! lifetime phases, occupancy CDFs), time-weighted averages (cache
//! occupancy), running means (bandwidth, miss rates), and plain-text table
//! rendering for the per-figure reports.
//!
//! Everything here is deterministic and allocation-light; the simulator
//! calls into these types on nearly every cycle.
//!
//! # Examples
//!
//! ```
//! use ubrc_stats::Histogram;
//!
//! let mut live = Histogram::new();
//! for n in [3u64, 5, 5, 9] {
//!     live.record(n);
//! }
//! assert_eq!(live.median(), Some(5));
//! assert_eq!(live.percentile(90.0), Some(9));
//! ```

#![warn(missing_docs)]

mod histogram;
mod json;
mod mean;
mod table;

pub use histogram::{CdfPoint, Histogram};
pub use json::Json;
pub use mean::{geomean, Ratio, RunningMean, TimeWeighted};
pub use table::Table;
