use std::fmt;

/// An online arithmetic mean over `f64` samples.
///
/// # Examples
///
/// ```
/// use ubrc_stats::RunningMean;
///
/// let mut m = RunningMean::new();
/// m.add(1.0);
/// m.add(3.0);
/// assert_eq!(m.mean(), Some(2.0));
/// assert_eq!(m.count(), 2);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RunningMean {
    sum: f64,
    count: u64,
}

impl RunningMean {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn add(&mut self, v: f64) {
        self.sum += v;
        self.count += 1;
    }

    /// Number of samples added.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples added.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// The mean, or `None` if no samples have been added.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }
}

impl fmt::Display for RunningMean {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mean() {
            Some(m) => write!(f, "{m:.4} (n={})", self.count),
            None => write!(f, "n/a (n=0)"),
        }
    }
}

/// A numerator/denominator pair for rates such as miss rates or
/// accesses-per-cycle.
///
/// Keeping the two tallies separate (instead of a float) lets experiments
/// aggregate across benchmarks exactly, the way the paper averages
/// per-benchmark rates.
///
/// # Examples
///
/// ```
/// use ubrc_stats::Ratio;
///
/// let mut misses = Ratio::new();
/// misses.add(3, 100);
/// assert_eq!(misses.value(), Some(0.03));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Ratio {
    num: u64,
    den: u64,
}

impl Ratio {
    /// Creates a zero/zero ratio.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds to the numerator and denominator.
    pub fn add(&mut self, num: u64, den: u64) {
        self.num += num;
        self.den += den;
    }

    /// Increments the numerator by `n` (denominator unchanged).
    pub fn hit(&mut self, n: u64) {
        self.num += n;
    }

    /// Increments the denominator by `n` (numerator unchanged).
    pub fn total(&mut self, n: u64) {
        self.den += n;
    }

    /// Numerator.
    pub fn numerator(&self) -> u64 {
        self.num
    }

    /// Denominator.
    pub fn denominator(&self) -> u64 {
        self.den
    }

    /// `num / den`, or `None` when the denominator is zero.
    pub fn value(&self) -> Option<f64> {
        if self.den == 0 {
            None
        } else {
            Some(self.num as f64 / self.den as f64)
        }
    }

    /// `num / den` as a percentage, or `None` when the denominator is zero.
    pub fn percent(&self) -> Option<f64> {
        self.value().map(|v| v * 100.0)
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.value() {
            Some(v) => write!(f, "{}/{} = {v:.4}", self.num, self.den),
            None => write!(f, "{}/0 = n/a", self.num),
        }
    }
}

/// A time-weighted average of a piecewise-constant signal, used for
/// quantities like "average register cache occupancy" where the value is
/// sampled at irregular update points.
///
/// Call [`TimeWeighted::update`] whenever the signal changes; the value is
/// assumed constant between updates. Updates must use non-decreasing
/// timestamps.
///
/// # Examples
///
/// ```
/// use ubrc_stats::TimeWeighted;
///
/// let mut occ = TimeWeighted::new(0, 0.0);
/// occ.update(10, 4.0); // value was 0.0 for cycles 0..10
/// occ.update(20, 0.0); // value was 4.0 for cycles 10..20
/// assert_eq!(occ.average(20), Some(2.0));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimeWeighted {
    last_time: u64,
    current: f64,
    weighted_sum: f64,
    start: u64,
}

impl TimeWeighted {
    /// Creates a tracker whose signal is `initial` starting at `start`.
    pub fn new(start: u64, initial: f64) -> Self {
        Self {
            last_time: start,
            current: initial,
            weighted_sum: 0.0,
            start,
        }
    }

    /// Records that the signal changed to `value` at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous update.
    pub fn update(&mut self, now: u64, value: f64) {
        assert!(now >= self.last_time, "time went backwards");
        self.weighted_sum += self.current * (now - self.last_time) as f64;
        self.last_time = now;
        self.current = value;
    }

    /// The current value of the signal.
    pub fn current(&self) -> f64 {
        self.current
    }

    /// The average of the signal over `[start, now]`, or `None` if the
    /// interval is empty. `now` must not precede the last update.
    pub fn average(&self, now: u64) -> Option<f64> {
        assert!(now >= self.last_time, "time went backwards");
        let span = now - self.start;
        if span == 0 {
            return None;
        }
        let total = self.weighted_sum + self.current * (now - self.last_time) as f64;
        Some(total / span as f64)
    }
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new(0, 0.0)
    }
}

/// Geometric mean of a slice of positive values, or `None` for an empty
/// slice or any non-positive element.
///
/// The paper reports cross-benchmark performance as means over the suite;
/// geometric means are the standard for IPC ratios.
///
/// # Examples
///
/// ```
/// use ubrc_stats::geomean;
///
/// let g = geomean(&[2.0, 8.0]).unwrap();
/// assert!((g - 4.0).abs() < 1e-12);
/// assert_eq!(geomean(&[]), None);
/// ```
pub fn geomean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_mean_empty() {
        let m = RunningMean::new();
        assert_eq!(m.mean(), None);
        assert_eq!(m.to_string(), "n/a (n=0)");
    }

    #[test]
    fn running_mean_accumulates() {
        let mut m = RunningMean::new();
        for v in [2.0, 4.0, 6.0] {
            m.add(v);
        }
        assert_eq!(m.mean(), Some(4.0));
        assert_eq!(m.sum(), 12.0);
    }

    #[test]
    fn ratio_zero_denominator_is_none() {
        let mut r = Ratio::new();
        r.hit(5);
        assert_eq!(r.value(), None);
        assert_eq!(r.percent(), None);
    }

    #[test]
    fn ratio_accumulates_exactly() {
        let mut r = Ratio::new();
        r.add(1, 4);
        r.add(1, 4);
        assert_eq!(r.value(), Some(0.25));
        assert_eq!(r.percent(), Some(25.0));
        assert_eq!(r.numerator(), 2);
        assert_eq!(r.denominator(), 8);
    }

    #[test]
    fn ratio_hit_and_total() {
        let mut r = Ratio::new();
        r.total(10);
        r.hit(3);
        assert_eq!(r.value(), Some(0.3));
    }

    #[test]
    fn time_weighted_average_over_constant_signal() {
        let mut t = TimeWeighted::new(0, 5.0);
        t.update(100, 5.0);
        assert_eq!(t.average(100), Some(5.0));
    }

    #[test]
    fn time_weighted_piecewise() {
        let mut t = TimeWeighted::new(0, 0.0);
        t.update(4, 8.0);
        // 0.0 for 4 cycles, 8.0 for 4 cycles -> average 4.0 at time 8.
        assert_eq!(t.average(8), Some(4.0));
        assert_eq!(t.current(), 8.0);
    }

    #[test]
    fn time_weighted_empty_interval() {
        let t = TimeWeighted::new(7, 3.0);
        assert_eq!(t.average(7), None);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn time_weighted_rejects_backwards_time() {
        let mut t = TimeWeighted::new(10, 0.0);
        t.update(5, 1.0);
    }

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[3.0]).unwrap() - 3.0).abs() < 1e-12);
        let g = geomean(&[1.0, 4.0, 16.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_rejects_nonpositive() {
        assert_eq!(geomean(&[1.0, 0.0]), None);
        assert_eq!(geomean(&[-1.0]), None);
    }
}
