//! Minimal JSON emitter (no external dependencies).
//!
//! The bench harness writes machine-readable trajectories
//! (`BENCH_pipeline.json`); pulling in `serde` for that would be the
//! only external dependency in the workspace, so this module provides
//! the small value type and serializer the harness actually needs.
//!
//! Numbers are emitted via Rust's shortest-roundtrip float formatting;
//! non-finite floats have no JSON representation and serialize as
//! `null`.
//!
//! # Examples
//!
//! ```
//! use ubrc_stats::Json;
//!
//! let doc = Json::obj([
//!     ("name", Json::from("suite")),
//!     ("ipc", Json::from(1.25)),
//!     ("cells", Json::arr([Json::from(1u64), Json::from(2u64)])),
//! ]);
//! assert_eq!(
//!     doc.to_string(),
//!     r#"{"name":"suite","ipc":1.25,"cells":[1,2]}"#
//! );
//! ```

use std::fmt;

/// A JSON value tree.
///
/// Objects preserve insertion order (stable output for goldens and
/// diffs), which is why this is a `Vec` of pairs rather than a map.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (non-finite values serialize as `null`).
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An ordered object.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Appends a `(key, value)` pair to an object.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not [`Json::Obj`].
    pub fn push(&mut self, key: impl Into<String>, value: Json) {
        match self {
            Json::Obj(pairs) => pairs.push((key.into(), value)),
            other => panic!("Json::push on non-object {other:?}"),
        }
    }

    fn write(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Json::Num(n) if n.is_finite() => {
                // An integral f64 prints as "1.0" by default; JSON
                // convention (and every consumer) prefers "1".
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Num(_) => f.write_str("null"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    v.write(f)?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    v.write(f)?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.write(f)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_nesting() {
        let j = Json::obj([
            ("a", Json::Null),
            ("b", Json::from(true)),
            ("c", Json::from(2.5)),
            ("d", Json::from(7u64)),
            (
                "e",
                Json::arr([Json::from("x"), Json::obj([("y", Json::from(1u64))])]),
            ),
        ]);
        assert_eq!(
            j.to_string(),
            r#"{"a":null,"b":true,"c":2.5,"d":7,"e":["x",{"y":1}]}"#
        );
    }

    #[test]
    fn strings_are_escaped() {
        let j = Json::from("a\"b\\c\nd\u{1}");
        assert_eq!(j.to_string(), r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::from(f64::NAN).to_string(), "null");
        assert_eq!(Json::from(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn push_extends_objects_in_order() {
        let mut j = Json::obj::<&str>([]);
        j.push("first", Json::from(1u64));
        j.push("second", Json::from(2u64));
        assert_eq!(j.to_string(), r#"{"first":1,"second":2}"#);
    }
}
