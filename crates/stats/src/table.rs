use std::fmt;

/// A plain-text table with aligned columns, used by the experiment harness
/// to print the rows/series each paper figure reports.
///
/// Columns are right-aligned except the first, which is left-aligned (it
/// usually holds a label). Rows shorter than the header are padded with
/// empty cells; longer rows extend the column set.
///
/// # Examples
///
/// ```
/// use ubrc_stats::Table;
///
/// let mut t = Table::new(["scheme", "ipc"]);
/// t.row(["use-based", "2.31"]);
/// t.row(["lru", "2.05"]);
/// let text = t.to_string();
/// assert!(text.contains("use-based"));
/// assert!(text.lines().count() >= 4); // header + rule + 2 rows
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of cells.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Appends a row built from a label and an iterator of `f64` values
    /// formatted with `decimals` fraction digits.
    pub fn row_f64<I>(&mut self, label: &str, values: I, decimals: usize) -> &mut Self
    where
        I: IntoIterator<Item = f64>,
    {
        let mut cells = vec![label.to_string()];
        cells.extend(values.into_iter().map(|v| format!("{v:.decimals$}")));
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut w = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            w[i] = w[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        if widths.is_empty() {
            return writeln!(f, "(empty table)");
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i == 0 {
                    write!(f, "{cell:<w$}")?;
                } else {
                    write!(f, "  {cell:>w$}")?;
                }
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_rule_and_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["x", "1"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    fn columns_align_to_widest_cell() {
        let mut t = Table::new(["name", "v"]);
        t.row(["longlabel", "1"]);
        t.row(["s", "22"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        // All lines are equally wide once trailing padding is considered.
        let w = lines[0].len().max(lines[2].len());
        assert!(lines[2].len() <= w + 2);
        assert!(lines[2].starts_with("longlabel"));
    }

    #[test]
    fn short_rows_pad_and_long_rows_extend() {
        let mut t = Table::new(["a"]);
        t.row(["x", "extra"]);
        t.row(["y"]);
        let s = t.to_string();
        assert!(s.contains("extra"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn row_f64_formats_decimals() {
        let mut t = Table::new(["k", "v1", "v2"]);
        t.row_f64("r", [1.23456, 2.0], 2);
        let s = t.to_string();
        assert!(s.contains("1.23"));
        assert!(s.contains("2.00"));
    }

    #[test]
    fn empty_table_display() {
        let t = Table::default();
        assert_eq!(t.to_string(), "(empty table)\n");
        assert!(t.is_empty());
    }
}
