//! Property tests for the statistics utilities: percentile queries must
//! agree with a sort-based reference, and the time-weighted average must
//! integrate exactly.

use proptest::prelude::*;
use ubrc_stats::{geomean, Histogram, TimeWeighted};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn percentiles_match_a_sorted_reference(
        mut samples in proptest::collection::vec(0u64..1000, 1..300),
        p in 0.0f64..100.0,
    ) {
        let h: Histogram = samples.iter().copied().collect();
        samples.sort_unstable();
        // Nearest-rank reference.
        let rank = ((p / 100.0) * samples.len() as f64).ceil().max(1.0) as usize;
        let expected = samples[rank - 1];
        prop_assert_eq!(h.percentile(p), Some(expected));
    }

    #[test]
    fn histogram_mean_matches_reference(
        samples in proptest::collection::vec(0u64..100_000, 1..200),
    ) {
        let h: Histogram = samples.iter().copied().collect();
        let expected = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        let got = h.mean().unwrap();
        prop_assert!((got - expected).abs() < 1e-6);
    }

    #[test]
    fn cdf_is_monotone_and_complete(
        samples in proptest::collection::vec(0u64..500, 1..200),
    ) {
        let h: Histogram = samples.iter().copied().collect();
        let cdf = h.cdf();
        prop_assert!(cdf.windows(2).all(|w| w[0].value < w[1].value));
        prop_assert!(cdf.windows(2).all(|w| w[0].fraction < w[1].fraction + 1e-12));
        prop_assert!((cdf.last().unwrap().fraction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_concatenation(
        a in proptest::collection::vec(0u64..100, 0..100),
        b in proptest::collection::vec(0u64..100, 0..100),
    ) {
        let mut merged: Histogram = a.iter().copied().collect();
        let hb: Histogram = b.iter().copied().collect();
        merged.merge(&hb);
        let combined: Histogram = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged, combined);
    }

    #[test]
    fn time_weighted_integrates_step_functions(
        steps in proptest::collection::vec((1u64..50, 0u32..100), 1..40),
    ) {
        let mut t = TimeWeighted::new(0, 0.0);
        let mut now = 0u64;
        let mut integral = 0.0f64;
        let mut current = 0.0f64;
        for (dt, v) in steps {
            integral += current * dt as f64;
            now += dt;
            current = v as f64;
            t.update(now, current);
        }
        // Close out one more interval.
        integral += current * 10.0;
        let avg = t.average(now + 10).unwrap();
        let expected = integral / (now + 10) as f64;
        prop_assert!((avg - expected).abs() < 1e-9, "avg {avg} vs {expected}");
    }

    #[test]
    fn geomean_is_scale_invariant(
        vals in proptest::collection::vec(0.01f64..100.0, 1..30),
        k in 0.1f64..10.0,
    ) {
        let g = geomean(&vals).unwrap();
        let scaled: Vec<f64> = vals.iter().map(|v| v * k).collect();
        let gs = geomean(&scaled).unwrap();
        prop_assert!((gs / g - k).abs() < 1e-6);
    }
}
