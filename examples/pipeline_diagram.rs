//! Pipeline diagram: reproduce Figure 3 of the paper interactively.
//!
//! Traces the first instructions of a dependent chain through the
//! machine and renders a text timeline showing fetch (F), dispatch (D),
//! issue (I), execute (X), writeback (W), and retire (R), plus how each
//! source operand arrived: `b` first-stage bypass, `B` later bypass
//! stage, `c` register-cache hit, `M` register-cache miss, `s` register
//! file.
//!
//! ```text
//! cargo run --release --example pipeline_diagram
//! ```

use ubrc::isa::assemble;
use ubrc::sim::{simulate, SimConfig, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Figure 3 scenario: a producer (I1) whose value feeds
    // consumers at increasing distances. I2/I3 catch the bypass
    // network; I4 reads the register cache; a consumer delayed behind a
    // long-latency chain arrives after the value was filtered and
    // misses (the star in Figure 3).
    let source = "
        main: li  r1, 21
              add r2, r1, r1      ; I1: produces the value of interest
              add r3, r2, r0      ; I2: first-stage bypass
              add r4, r2, r0      ; I3: first/second-stage bypass
              add r5, r2, r0      ; I4: register cache access
              li  r20, 7
              mul r20, r20, r20   ; long-latency chain to delay I5
              mul r20, r20, r20
              mul r20, r20, r20
              add r6, r2, r20     ; I5: arrives late -> cache miss
              halt
    ";
    let program = assemble(source)?;

    let mut config = SimConfig::paper_default();
    config.trace_instructions = 12;
    let result = Simulator::new(program.clone(), config).run();

    println!("pipeline timeline (use-based register cache):\n");
    let timeline = result.timeline.expect("tracing enabled");
    print!("{}", timeline.render(72));
    println!(
        "\n{} register cache miss(es), {} instruction(s) squashed by replay",
        result.miss_events, result.replayed
    );

    // Same code on the 3-cycle monolithic file for contrast.
    let mut mono = SimConfig::table1(ubrc::sim::RegStorage::Monolithic {
        read_latency: 3,
        write_latency: 3,
    });
    mono.trace_instructions = 12;
    let result = Simulator::new(program, mono).run();
    println!("\npipeline timeline (3-cycle monolithic register file):\n");
    print!("{}", result.timeline.expect("tracing enabled").render(72));

    // simulate() is the one-call form when no tracing is needed.
    let _ = simulate(assemble("main: halt\n")?, SimConfig::paper_default());
    Ok(())
}
