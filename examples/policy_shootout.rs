//! Policy shootout: run the whole benchmark suite under every register
//! storage organization the paper evaluates and print a league table.
//!
//! ```text
//! cargo run --release --example policy_shootout [tiny|small|default]
//! ```

use ubrc::core::{IndexPolicy, RegCacheConfig, TwoLevelConfig};
use ubrc::sim::{simulate_workload, RegStorage, SimConfig};
use ubrc::stats::{geomean, Table};
use ubrc::workloads::{suite, Scale};

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("tiny") => Scale::Tiny,
        Some("default") => Scale::Default,
        _ => Scale::Small,
    };

    let cached = |cache: RegCacheConfig, index| {
        SimConfig::table1(RegStorage::Cached {
            cache,
            index,
            backing_read: 2,
            backing_write: 2,
        })
    };
    let contenders: Vec<(&str, SimConfig)> = vec![
        (
            "1-cycle monolithic RF (upper bound)",
            SimConfig::table1(RegStorage::Monolithic {
                read_latency: 1,
                write_latency: 1,
            }),
        ),
        (
            "use-based cache 64/2-way + filtered-rr",
            SimConfig::paper_default(),
        ),
        (
            "use-based cache 48/4-way + filtered-rr",
            cached(
                RegCacheConfig::use_based(48, 4),
                IndexPolicy::FilteredRoundRobin,
            ),
        ),
        (
            "lru cache 64/2-way + round-robin",
            cached(RegCacheConfig::lru(64, 2), IndexPolicy::RoundRobin),
        ),
        (
            "non-bypass cache 64/2-way + round-robin",
            cached(RegCacheConfig::non_bypass(64, 2), IndexPolicy::RoundRobin),
        ),
        (
            "two-level file, 96-entry L1",
            SimConfig::table1(RegStorage::TwoLevel(TwoLevelConfig::optimistic(96))),
        ),
        (
            "3-cycle monolithic RF (what the cache replaces)",
            SimConfig::table1(RegStorage::Monolithic {
                read_latency: 3,
                write_latency: 3,
            }),
        ),
    ];

    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    for (name, cfg) in contenders {
        let mut ipcs = Vec::new();
        let mut miss = Vec::new();
        for w in suite(scale) {
            let r = simulate_workload(&w, cfg.clone());
            ipcs.push(r.ipc());
            if let Some(m) = r.miss_rate_per_operand() {
                miss.push(m);
            }
        }
        let g = geomean(&ipcs).expect("positive IPCs");
        let m = if miss.is_empty() {
            f64::NAN
        } else {
            miss.iter().sum::<f64>() / miss.len() as f64 * 100.0
        };
        rows.push((name.to_string(), g, m));
    }
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));

    let mut table = Table::new(["organization", "geomean IPC", "miss/operand %"]);
    for (name, ipc, miss) in rows {
        let m = if miss.is_nan() {
            "-".to_string()
        } else {
            format!("{miss:.2}")
        };
        table.row([name, format!("{ipc:.4}"), m]);
    }
    println!("{table}");
}
