//! Register lifetime census: reproduce the motivation of §2 of the
//! paper interactively. For each kernel, measure the three phases of a
//! physical register's lifetime (empty / live / dead) and the number of
//! simultaneously live values, and relate them to register cache
//! sizing.
//!
//! ```text
//! cargo run --release --example lifetime_census
//! ```

use ubrc::sim::{simulate_workload, SimConfig};
use ubrc::stats::Table;
use ubrc::workloads::{suite, Scale};

fn main() {
    let mut cfg = SimConfig::paper_default();
    cfg.collect_lifetimes = true;

    let mut table = Table::new([
        "benchmark",
        "empty(med)",
        "live(med)",
        "dead(med)",
        "live@50%",
        "live@90%",
        "alloc@90%",
    ]);
    let mut live90_max = 0u64;
    for w in suite(Scale::Small) {
        let r = simulate_workload(&w, cfg.clone());
        let lt = r.lifetimes.as_ref().expect("lifetimes enabled");
        let live90 = lt.live_concurrency.percentile(90.0).unwrap_or(0);
        live90_max = live90_max.max(live90);
        table.row([
            w.name.to_string(),
            lt.empty.median().unwrap_or(0).to_string(),
            lt.live.median().unwrap_or(0).to_string(),
            lt.dead.median().unwrap_or(0).to_string(),
            lt.live_concurrency.median().unwrap_or(0).to_string(),
            live90.to_string(),
            lt.alloc_concurrency
                .percentile(90.0)
                .unwrap_or(0)
                .to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "The live time is a small slice of the full lifetime: values are\n\
         readable only between their write and their last use, which is why\n\
         a small cache can stand in for a {}-entry register file.\n\
         A register cache sized near the 90th-percentile live-value count\n\
         (max over kernels here: {live90_max}) captures most reads — the paper's\n\
         argument for its 64-entry design point.",
        SimConfig::paper_default().phys_regs,
    );
}
