; saxpy: y[i] = a*x[i] + y[i] over 64 doubles, 20 passes.
; Usable with either CLI tool:
;   cargo run --release -p ubrc-bench --bin simulate -- examples/kernels/saxpy.s --list
;   cargo run --release --example custom_kernel examples/kernels/saxpy.s
.data
a:   .double 2.5
x:   .double 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8
     .double 0.9, 1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6
     .double 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8
     .double 0.9, 1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6
     .double 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8
     .double 0.9, 1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6
     .double 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8
     .double 0.9, 1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6
y:   .space 512
.text
main:   la   r1, a
        fld  f20, 0(r1)      ; a stays live the whole run: a pinning candidate
        li   r9, 20          ; passes
pass:   la   r2, x
        la   r3, y
        li   r4, 64
loop:   fld  f1, 0(r2)
        fld  f2, 0(r3)
        fmul f3, f20, f1
        fadd f4, f3, f2
        fsd  f4, 0(r3)
        addi r2, r2, 8
        addi r3, r3, 8
        subi r4, r4, 1
        bgtz r4, loop
        subi r9, r9, 1
        bgtz r9, pass
        halt
