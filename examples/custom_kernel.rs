//! Bring your own workload: write a kernel in UBRC assembly (or load
//! one from a file), validate it functionally, and sweep the register
//! cache geometry for it — the workflow a microarchitect would use to
//! size a register cache for a specific code pattern.
//!
//! ```text
//! cargo run --release --example custom_kernel [path/to/kernel.s]
//! ```
//!
//! Without an argument, a built-in histogram kernel is used.

use ubrc::core::{IndexPolicy, RegCacheConfig};
use ubrc::emu::Machine;
use ubrc::isa::assemble;
use ubrc::sim::{simulate, RegStorage, SimConfig};
use ubrc::stats::Table;

const BUILTIN: &str = "
    ; byte-histogram kernel: classic table-update pattern with
    ; load-modify-store dependences through memory.
    .data
    input:  .byte 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3
            .byte 2, 3, 8, 4, 6, 2, 6, 4, 3, 3, 8, 3, 2, 7, 9, 5
    hist:   .space 80
    .text
    main:   li   r9, 200           ; passes
    pass:   la   r1, input
            li   r2, 32
    loop:   lbu  r3, 0(r1)
            slli r4, r3, 3
            la   r5, hist
            add  r5, r5, r4
            ld   r6, 0(r5)
            addi r6, r6, 1
            sd   r6, 0(r5)
            addi r1, r1, 1
            subi r2, r2, 1
            bgtz r2, loop
            subi r9, r9, 1
            bgtz r9, pass
            ; checksum the histogram
            la   r1, hist
            li   r2, 10
            li   r4, 0
    sum:    ld   r3, 0(r1)
            add  r4, r4, r3
            addi r1, r1, 8
            subi r2, r2, 1
            bgtz r2, sum
            halt
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => BUILTIN.to_string(),
    };
    let program = assemble(&source)?;

    // Functional validation first: a kernel that faults or spins would
    // waste every sweep point.
    let mut machine = Machine::new(program.clone());
    machine.run(10_000_000)?;
    if !machine.is_halted() {
        return Err("kernel did not halt within 10M instructions".into());
    }
    println!(
        "kernel OK: {} dynamic instructions, checksum r4 = {}\n",
        machine.instruction_count(),
        machine.int_reg(4)
    );

    // Sweep cache geometry for this kernel.
    let mut table = Table::new(["geometry", "IPC", "miss/operand %", "writes filtered %"]);
    for (entries, ways) in [(16, 2), (32, 2), (64, 2), (64, 4), (128, 2)] {
        let cfg = SimConfig::table1(RegStorage::Cached {
            cache: RegCacheConfig::use_based(entries, ways),
            index: IndexPolicy::FilteredRoundRobin,
            backing_read: 2,
            backing_write: 2,
        });
        let r = simulate(program.clone(), cfg);
        let cache = r.regcache.as_ref().expect("cached config");
        table.row([
            format!("{entries}-entry {ways}-way"),
            format!("{:.3}", r.ipc()),
            format!("{:.2}", r.miss_rate_per_operand().unwrap_or(0.0) * 100.0),
            format!("{:.1}", cache.frac_writes_filtered().unwrap_or(0.0) * 100.0),
        ]);
    }
    let mono = simulate(
        program,
        SimConfig::table1(RegStorage::Monolithic {
            read_latency: 3,
            write_latency: 3,
        }),
    );
    table.row([
        "3-cycle monolithic file".to_string(),
        format!("{:.3}", mono.ipc()),
        "-".to_string(),
        "-".to_string(),
    ]);
    println!("{table}");
    Ok(())
}
