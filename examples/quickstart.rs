//! Quickstart: assemble a program, run it functionally, then simulate
//! it on the Table 1 machine with the paper's use-based register cache
//! and compare against a 3-cycle monolithic register file.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ubrc::emu::Machine;
use ubrc::isa::assemble;
use ubrc::sim::{simulate, RegStorage, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A little dot-product kernel in UBRC assembly.
    let source = "
        .data
        a:   .quad 1, 2, 3, 4, 5, 6, 7, 8
        b:   .quad 8, 7, 6, 5, 4, 3, 2, 1
        .text
        main:   la   r1, a
                la   r2, b
                li   r3, 8
                li   r4, 0
        loop:   ld   r5, 0(r1)
                ld   r6, 0(r2)
                mul  r7, r5, r6
                add  r4, r4, r7
                addi r1, r1, 8
                addi r2, r2, 8
                subi r3, r3, 1
                bgtz r3, loop
                halt
    ";
    let program = assemble(source)?;

    // 1. Functional execution: the architectural ground truth.
    let mut machine = Machine::new(program.clone());
    machine.run(100_000)?;
    println!("functional result: r4 = {}", machine.int_reg(4));
    assert_eq!(machine.int_reg(4), 120);

    // 2. Timing simulation with the paper's proposed design: a
    //    64-entry, 2-way use-based register cache with filtered
    //    round-robin decoupled indexing over a 2-cycle backing file.
    let cached = simulate(program.clone(), SimConfig::paper_default());
    println!(
        "use-based register cache: {} cycles, IPC {:.3}",
        cached.cycles,
        cached.ipc()
    );
    if let Some(cache) = &cached.regcache {
        println!(
            "  cache: {} reads, {:.1}% miss rate, {} writes filtered",
            cache.reads,
            cache.miss_rate().unwrap_or(0.0) * 100.0,
            cache.writes_filtered
        );
    }

    // 3. The baseline it replaces: a monolithic 3-cycle register file.
    let mono = simulate(
        program,
        SimConfig::table1(RegStorage::Monolithic {
            read_latency: 3,
            write_latency: 3,
        }),
    );
    println!(
        "3-cycle monolithic file:  {} cycles, IPC {:.3}",
        mono.cycles,
        mono.ipc()
    );

    Ok(())
}
